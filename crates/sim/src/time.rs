//! Simulated time.
//!
//! Time is kept in integer **microseconds** so that event ordering is
//! exact and runs are reproducible across platforms. The paper's
//! parameters are all in milliseconds (`PageCPU = 5 ms`,
//! `PageDisk = 20 ms`, `MsgCPU = 5 or 1 ms`), which microseconds
//! represent without rounding.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since
/// the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since time zero.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since time zero, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// microsecond.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms >= 0.0, "durations cannot be negative");
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Microseconds in this span.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this span, as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in this span, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(20).as_micros(), 20_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn fractional_millis_round_to_nearest_micro() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(0.0004).as_micros(), 0);
        assert_eq!(SimDuration::from_millis_f64(0.0006).as_micros(), 1);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(
            SimDuration::from_millis(7) + SimDuration::from_millis(3),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            SimDuration::from_millis(20) / 4,
            SimDuration::from_millis(5)
        );
        assert_eq!(
            SimDuration::from_millis(5) * 3,
            SimDuration::from_millis(15)
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(9);
        assert_eq!(b.since(a), SimDuration::from_millis(6));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_subtraction_saturates() {
        let d = SimDuration::from_millis(3) - SimDuration::from_millis(9);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
