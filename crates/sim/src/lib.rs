//! # simkernel — discrete-event simulation kernel
//!
//! The substrate underneath the distributed-database model of
//! *"Revisiting Commit Processing in Distributed Database Systems"*
//! (SIGMOD 1997). It provides exactly the machinery a detailed closed
//! queueing model needs:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated time,
//!   so runs are bit-for-bit deterministic,
//! * [`Calendar`] — a future-event list with deterministic FIFO
//!   tie-breaking for simultaneous events,
//! * [`resource::Station`] — a multi-server FCFS queueing station with
//!   two priority classes (the paper gives message processing priority
//!   over data processing at the CPUs) and an *infinite-server* mode
//!   (used for the pure data-contention experiments, where "the
//!   physical resources were made infinite, that is, there is no
//!   queueing for these resources"),
//! * [`stats`] — tallies, time-weighted averages, and batch-means
//!   confidence intervals (the paper reports 90% confidence intervals
//!   with relative half-widths below 10%),
//! * [`rng::SimRng`] — a seeded RNG facade for workload sampling.
//!
//! The kernel is deliberately free of any database semantics; it is
//! reusable for any closed queueing-network study.

pub mod calendar;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod slab;
pub mod stats;
pub mod time;

pub use calendar::Calendar;
pub use resource::{JobClass, Station, StationKind};
pub use rng::{mix_seed, SimRng};
pub use shard::ShardCalendar;
pub use slab::{Slab, SlabKey};
pub use time::{SimDuration, SimTime};
