//! A generational slab: dense `Vec` storage keyed by small integer
//! handles with a free-list.
//!
//! The simulator's hot state (transactions, cohorts) is born and dies
//! millions of times per run. Hash maps keyed by ever-growing external
//! ids pay a hash and a probe on every touch; a slab pays an array
//! index. The catch is dangling references: events in flight may name
//! a transaction that has since died, and with bare indices a reused
//! slot would silently alias the *next* occupant. Handles therefore
//! carry a **generation** that is bumped on every removal — a stale
//! handle resolves to `None`, reproducing exactly the "lookup by
//! never-reused external id misses" semantics the hash maps gave.
//!
//! Everything is deterministic: slot allocation is LIFO off the free
//! list, and iteration is in slot order — no hashing anywhere, so a
//! given sequence of inserts/removes yields the same handles and the
//! same iteration order on every run and every platform.

use std::marker::PhantomData;

/// A raw slab handle: a 32-bit slot index plus a 32-bit generation.
///
/// Domain-specific key types (e.g. a transaction handle vs. a cohort
/// handle, which must not be interchangeable) wrap this via
/// [`SlabKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    idx: u32,
    generation: u32,
}

impl Handle {
    /// Assemble a handle from its parts. Public so key newtypes (and
    /// tests) can build handles; a fabricated handle is safe — at
    /// worst it resolves to `None`.
    #[inline]
    pub fn new(idx: u32, generation: u32) -> Self {
        Handle { idx, generation }
    }

    /// Slot index (dense, reused after removal).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }

    /// Generation the slot had when this handle was issued.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// A typed key over a slab: a newtype around [`Handle`] that keeps
/// differently-typed handles (transactions vs. cohorts) from mixing.
pub trait SlabKey: Copy {
    fn from_handle(h: Handle) -> Self;
    fn handle(self) -> Handle;
}

impl SlabKey for Handle {
    #[inline]
    fn from_handle(h: Handle) -> Self {
        h
    }
    #[inline]
    fn handle(self) -> Handle {
        self
    }
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    val: Option<T>,
}

/// The slab itself: `slots` plus a LIFO free list.
#[derive(Debug)]
pub struct Slab<K: SlabKey, T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: SlabKey, T> Default for Slab<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: SlabKey, T> Slab<K, T> {
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert, reusing the most recently freed slot if any.
    pub fn insert(&mut self, val: T) -> K {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            K::from_handle(Handle::new(idx, slot.generation))
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab capacity exceeded");
            self.slots.push(Slot {
                generation: 0,
                val: Some(val),
            });
            K::from_handle(Handle::new(idx, 0))
        }
    }

    #[inline]
    fn slot(&self, key: K) -> Option<&Slot<T>> {
        let h = key.handle();
        self.slots
            .get(h.index() as usize)
            .filter(|s| s.generation == h.generation())
    }

    /// Resolve a handle; `None` if it was removed (any generation
    /// mismatch) or never issued.
    #[inline]
    pub fn get(&self, key: K) -> Option<&T> {
        self.slot(key)?.val.as_ref()
    }

    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut T> {
        let h = key.handle();
        let slot = self.slots.get_mut(h.index() as usize)?;
        if slot.generation != h.generation() {
            return None;
        }
        slot.val.as_mut()
    }

    #[inline]
    pub fn contains(&self, key: K) -> bool {
        self.slot(key).is_some_and(|s| s.val.is_some())
    }

    /// Remove and return the value. The slot's generation is bumped so
    /// every outstanding handle to it goes stale, then the slot joins
    /// the free list.
    pub fn remove(&mut self, key: K) -> Option<T> {
        let h = key.handle();
        let slot = self.slots.get_mut(h.index() as usize)?;
        if slot.generation != h.generation() {
            return None;
        }
        let val = slot.val.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(h.index());
        self.len -= 1;
        Some(val)
    }

    /// Iterate live entries in slot order (deterministic; not
    /// insertion order once slots are reused).
    pub fn iter(&self) -> impl Iterator<Item = (K, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.val
                .as_ref()
                .map(|v| (K::from_handle(Handle::new(i as u32, s.generation)), v))
        })
    }

    /// Iterate live values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.val.as_ref())
    }
}

impl<K: SlabKey, T> std::ops::Index<K> for Slab<K, T> {
    type Output = T;
    #[inline]
    fn index(&self, key: K) -> &T {
        self.get(key).expect("stale or foreign slab handle")
    }
}

impl<K: SlabKey, T> std::ops::IndexMut<K> for Slab<K, T> {
    #[inline]
    fn index_mut(&mut self, key: K) -> &mut T {
        self.get_mut(key).expect("stale or foreign slab handle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s: Slab<Handle, &str> = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s[b], "b");
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert!(!s.contains(a));
        assert!(s.contains(b));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_handles_never_alias_reused_slots() {
        let mut s: Slab<Handle, u32> = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2); // reuses slot 0 with a new generation
        assert_eq!(b.handle().index(), a.handle().index());
        assert_ne!(a, b);
        assert_eq!(s.get(a), None, "stale handle must miss");
        assert_eq!(s.get(b), Some(&2));
        assert_eq!(s.remove(a), None, "stale remove is a no-op");
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "stale or foreign slab handle")]
    fn indexing_with_stale_handle_panics() {
        let mut s: Slab<Handle, u32> = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let _ = s[a];
    }

    #[test]
    fn free_list_is_lifo_and_iteration_is_slot_ordered() {
        let mut s: Slab<Handle, u32> = Slab::new();
        let h: Vec<_> = (0..5).map(|i| s.insert(i)).collect();
        s.remove(h[1]);
        s.remove(h[3]);
        // LIFO: slot 3 comes back first, then slot 1.
        let x = s.insert(30);
        let y = s.insert(10);
        assert_eq!(x.handle().index(), 3);
        assert_eq!(y.handle().index(), 1);
        let vals: Vec<u32> = s.values().copied().collect();
        assert_eq!(vals, vec![0, 10, 2, 30, 4], "slot order");
        let keys: Vec<u32> = s.iter().map(|(k, _)| k.handle().index()).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn typed_keys_do_not_mix() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        struct AKey(Handle);
        impl SlabKey for AKey {
            fn from_handle(h: Handle) -> Self {
                AKey(h)
            }
            fn handle(self) -> Handle {
                self.0
            }
        }
        let mut s: Slab<AKey, u8> = Slab::new();
        let k = s.insert(7);
        assert_eq!(s[k], 7);
        // (A `Slab<BKey, _>` would reject `k` at compile time.)
    }
}

// Seeded-loop generative tests in the std-only style of the repo's
// former proptest suites: a reference model (`Vec<Option<_>>` keyed by
// issued handles) is driven alongside the slab through random
// insert/remove/get schedules.
#[cfg(test)]
mod generative_tests {
    use super::*;
    use crate::rng::SimRng;

    /// Handle stability: live handles keep resolving to their value no
    /// matter how many unrelated inserts/removals happen around them;
    /// removed handles never resolve again, even after their slot is
    /// reused many times.
    #[test]
    fn random_schedules_match_reference_model() {
        let mut r = SimRng::new(0x51AB_51AB);
        for _case in 0..200 {
            let mut slab: Slab<Handle, u64> = Slab::new();
            let mut live: Vec<(Handle, u64)> = Vec::new();
            let mut dead: Vec<Handle> = Vec::new();
            let mut next_val = 0u64;
            for _step in 0..r.uniform_usize(10, 300) {
                match r.uniform_u64(0, 99) {
                    // insert (weighted up so slabs grow)
                    0..=49 => {
                        let h = slab.insert(next_val);
                        assert_eq!(slab.get(h), Some(&next_val));
                        live.push((h, next_val));
                        next_val += 1;
                    }
                    // remove a random live entry
                    50..=79 if !live.is_empty() => {
                        let i = r.uniform_usize(0, live.len() - 1);
                        let (h, v) = live.swap_remove(i);
                        assert_eq!(slab.remove(h), Some(v));
                        dead.push(h);
                    }
                    // probe a random dead handle: must miss forever
                    80..=89 if !dead.is_empty() => {
                        let h = dead[r.uniform_usize(0, dead.len() - 1)];
                        assert_eq!(slab.get(h), None);
                        assert_eq!(slab.remove(h), None);
                    }
                    _ => {}
                }
                // Every live handle still resolves to its own value.
                assert_eq!(slab.len(), live.len());
                for &(h, v) in &live {
                    assert_eq!(slab.get(h), Some(&v), "live handle lost");
                }
            }
        }
    }

    /// Free-list reuse: the slab's slot count never exceeds the
    /// high-water mark of simultaneously live entries, i.e. every
    /// freed slot really is reused before the backing `Vec` grows.
    #[test]
    fn slot_count_tracks_high_water_mark() {
        let mut r = SimRng::new(0x0F5E_7157);
        for _case in 0..100 {
            let mut slab: Slab<Handle, usize> = Slab::new();
            let mut live: Vec<Handle> = Vec::new();
            let mut high_water = 0usize;
            let mut max_index = 0u32;
            for step in 0..r.uniform_usize(20, 400) {
                if live.is_empty() || r.chance(0.55) {
                    let h = slab.insert(step);
                    max_index = max_index.max(h.index());
                    live.push(h);
                    high_water = high_water.max(live.len());
                } else {
                    let h = live.swap_remove(r.uniform_usize(0, live.len() - 1));
                    slab.remove(h);
                }
            }
            assert!(
                (max_index as usize) < high_water.max(1),
                "allocated slot {max_index} but only {high_water} were ever live at once"
            );
        }
    }

    /// Deterministic replay: the same schedule issues the same handles
    /// and the same iteration order on a fresh slab.
    #[test]
    fn identical_schedules_issue_identical_handles() {
        let schedule = |seed: u64| {
            let mut r = SimRng::new(seed);
            let mut slab: Slab<Handle, u64> = Slab::new();
            let mut live: Vec<Handle> = Vec::new();
            let mut issued: Vec<Handle> = Vec::new();
            for step in 0..500u64 {
                if live.is_empty() || r.chance(0.6) {
                    let h = slab.insert(step);
                    live.push(h);
                    issued.push(h);
                } else {
                    let h = live.swap_remove(r.uniform_usize(0, live.len() - 1));
                    slab.remove(h);
                }
            }
            let order: Vec<(u32, u64)> = slab.iter().map(|(k, &v)| (k.index(), v)).collect();
            (issued, order)
        };
        assert_eq!(schedule(99), schedule(99));
    }
}
