//! Output statistics.
//!
//! The paper reports mean throughputs whose 90% confidence intervals
//! have relative half-widths below 10%, computed over long runs. This
//! module provides the estimators the experiment harness uses:
//!
//! * [`Tally`] — streaming mean/variance (Welford) for observational
//!   data such as response times,
//! * [`TimeWeighted`] — time-averaged level, used for the paper's
//!   *block ratio* ("the average fraction of transactions that are in
//!   the blocked state") and resource population metrics,
//! * [`BatchMeans`] — the batch-means method for confidence intervals
//!   on steady-state means from a single run,
//! * [`Counter`] — a plain event counter with per-transaction ratios.

use crate::time::{SimDuration, SimTime};

/// Streaming mean and variance via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration observation in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another tally into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant level, e.g. the number
/// of blocked transactions. Call [`TimeWeighted::set`] whenever the
/// level changes; query [`TimeWeighted::time_average`] at the end.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    level: f64,
    last_change: SimTime,
    origin: SimTime,
    area: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new(SimTime::ZERO, 0.0)
    }
}

impl TimeWeighted {
    /// Start integrating at `start` from an initial `level`.
    pub fn new(start: SimTime, level: f64) -> Self {
        TimeWeighted {
            level,
            last_change: start,
            origin: start,
            area: 0.0,
        }
    }

    fn accumulate(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_change);
        self.area += self.level * now.since(self.last_change).as_micros() as f64;
        self.last_change = now;
    }

    /// The level changed to `level` at `now`.
    pub fn set(&mut self, now: SimTime, level: f64) {
        self.accumulate(now);
        self.level = level;
    }

    /// Adjust the level by `delta` at `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        self.accumulate(now);
        self.level += delta;
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Time-average of the level over `[origin, now]`.
    pub fn time_average(&mut self, now: SimTime) -> f64 {
        self.accumulate(now);
        let elapsed = now.since(self.origin).as_micros();
        if elapsed == 0 {
            self.level
        } else {
            self.area / elapsed as f64
        }
    }

    /// Restart integration at `now`, keeping the current level — used at
    /// the end of warm-up.
    pub fn reset(&mut self, now: SimTime) {
        self.accumulate(now);
        self.origin = now;
        self.last_change = now;
        self.area = 0.0;
    }

    /// The raw level·time integral over `[origin, now]`, in
    /// level-seconds. Successive calls at window boundaries yield
    /// per-window areas by subtraction, and those deltas telescope
    /// exactly: their sum equals the final integral bit for bit, which
    /// is what lets windowed series cross-check against whole-run
    /// time averages.
    pub fn integral_seconds(&mut self, now: SimTime) -> f64 {
        self.accumulate(now);
        self.area / 1e6
    }
}

/// Two-sided Student-t critical value for a 90% confidence interval
/// (i.e. the 0.95 quantile) with `df` degrees of freedom.
///
/// Exact table values for small `df`, the normal quantile beyond.
pub fn t_critical_90(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
        1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
        1.703, 1.701, 1.699, 1.697,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 1.684,
        41..=60 => 1.671,
        61..=120 => 1.658,
        _ => 1.645,
    }
}

/// A confidence interval on a steady-state mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (grand mean over batches).
    pub mean: f64,
    /// Half-width of the 90% interval.
    pub half_width: f64,
    /// Number of batches the estimate is based on.
    pub batches: u64,
}

impl ConfidenceInterval {
    /// Half-width relative to the mean (paper requires < 10%); 0 when
    /// the mean is 0.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Batch-means estimator: observations are grouped into fixed-size
/// batches; the batch means are treated as (approximately) independent
/// samples of the steady-state mean.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batch_means: Tally,
}

impl BatchMeans {
    /// Group observations into batches of `batch_size`.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batch_means: Tally::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batch_means
                .record(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// 90% confidence interval over completed batch means.
    pub fn confidence_interval(&self) -> ConfidenceInterval {
        let k = self.batch_means.count();
        let mean = self.batch_means.mean();
        if k < 2 {
            return ConfidenceInterval {
                mean,
                half_width: f64::INFINITY,
                batches: k,
            };
        }
        let se = (self.batch_means.variance() / k as f64).sqrt();
        ConfidenceInterval {
            mean,
            half_width: t_critical_90(k - 1) * se,
            batches: k,
        }
    }
}

/// Result of an MSER-style steady-state scan over a sequence of batch
/// means (see [`mser_truncation`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// Number of batch means examined.
    pub samples: usize,
    /// Best truncation point: samples `[truncated..]` are the
    /// steady-state portion. Meaningless when `converged` is false.
    pub truncated: usize,
    /// Whether the scan found a credible steady state: enough samples,
    /// and the optimal truncation in the first half of the run.
    pub converged: bool,
    /// Mean of the retained (post-truncation) samples.
    pub mean: f64,
}

/// Fewest batch means for which a steady-state verdict is attempted;
/// below this the run is reported as not converged. Eleven samples is
/// what the default run configuration produces (warmup + measured over
/// the measurement batch size), so defaults sit comfortably above it.
pub const MSER_MIN_SAMPLES: usize = 8;

/// MSER-style initial-transient detection over a series of batch means
/// (White's Marginal Standard Error Rule, the MSER-5 family with the
/// batching done by the caller).
///
/// For each candidate truncation `d` in the first half of the series,
/// compute the squared standard error of the mean of the retained tail,
/// `var(z[d..]) / (n - d)`, and pick the `d` that minimises it (first
/// minimum wins on ties, so the scan is deterministic). The run is
/// declared converged only when there are at least
/// [`MSER_MIN_SAMPLES`] samples and the optimum lies strictly inside
/// the first half — an optimum sitting on the half-way boundary means
/// the statistic was still improving as data was discarded, i.e. the
/// run never settled.
pub fn mser_truncation(samples: &[f64]) -> SteadyState {
    let n = samples.len();
    if n < MSER_MIN_SAMPLES {
        return SteadyState {
            samples: n,
            truncated: 0,
            converged: false,
            mean: mean_of(samples),
        };
    }
    let half = n / 2;
    let mut best_d = 0;
    let mut best_se2 = f64::INFINITY;
    for d in 0..=half {
        let tail = &samples[d..];
        let mut t = Tally::new();
        for &x in tail {
            t.record(x);
        }
        let se2 = t.variance() / tail.len() as f64;
        if se2 < best_se2 {
            best_se2 = se2;
            best_d = d;
        }
    }
    SteadyState {
        samples: n,
        truncated: best_d,
        converged: best_d < half,
        mean: mean_of(&samples[best_d..]),
    }
}

fn mean_of(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Number of major buckets in the shared log-linear geometry: up to
/// 2^32 (µs ≈ 71.6 minutes for durations, or a queue depth of ~4·10^9).
const LOG_LINEAR_MAJORS: usize = 33;

/// Shared HDR-style bucket index: power-of-two major buckets, each split
/// into 16 linear sub-buckets; the first major bucket is linear over
/// 0..16 so small values are exact. Relative error ≤ 6.25%.
fn log_linear_bucket(v: u64) -> (usize, usize) {
    if v < 16 {
        return (0, v as usize);
    }
    let major = 63 - v.leading_zeros() as usize; // floor(log2)
    let minor = ((v >> (major - 4)) & 0xF) as usize;
    (major.min(LOG_LINEAR_MAJORS - 1) - 3, minor)
}

/// Lower bound of a log-linear bucket (inverse of [`log_linear_bucket`]).
fn log_linear_bucket_value(major: usize, minor: usize) -> u64 {
    if major == 0 {
        return minor as u64;
    }
    let m = major + 3;
    (1u64 << m) + ((minor as u64) << (m - 4))
}

/// A log-linear duration histogram (HDR-style): power-of-two major
/// buckets, each split into 16 linear sub-buckets, covering 1 µs to
/// ~4 600 s with ≤ 6.25% relative error. Used for response-time
/// percentiles (p50/p95/p99), which a mean alone cannot convey for the
/// heavy-tailed response distributions thrashing systems produce.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    /// counts[major][minor]; major = floor(log2(µs)), minor = next 4 bits.
    counts: Vec<[u64; 16]>,
    total: u64,
    sum_micros: u128,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DurationHistogram {
            counts: vec![[0; 16]; LOG_LINEAR_MAJORS],
            total: 0,
            sum_micros: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let (major, minor) = log_linear_bucket(d.as_micros());
        self.counts[major][minor] += 1;
        self.total += 1;
        self.sum_micros += d.as_micros() as u128;
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded durations (exact, not bucketed).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration((self.sum_micros / self.total as u128) as u64)
        }
    }

    /// The q-quantile (0 ≤ q ≤ 1) as a bucket lower bound — within
    /// 6.25% of the true value. Returns zero for an empty histogram.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (major, row) in self.counts.iter().enumerate() {
            for (minor, &c) in row.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return SimDuration(log_linear_bucket_value(major, minor));
                }
            }
        }
        unreachable!("total tracks bucket counts");
    }

    /// Shorthand: the median.
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// Shorthand: the 90th percentile.
    pub fn p90(&self) -> SimDuration {
        self.quantile(0.90)
    }

    /// Shorthand: the 95th percentile.
    pub fn p95(&self) -> SimDuration {
        self.quantile(0.95)
    }

    /// Shorthand: the 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one; equivalent to having
    /// recorded both observation streams into a single histogram.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += t;
            }
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
    }
}

/// A time-weighted occupancy histogram over the same log-linear bucket
/// geometry as [`DurationHistogram`], but with *time* as the weight:
/// each bucket accumulates the µs the tracked level (queue depth,
/// population) spent at that value. Quantiles are therefore
/// time-weighted — `p99()` is the depth the queue did not exceed for
/// 99% of the observed interval, which explains throughput cliffs a
/// mean depth cannot.
///
/// Feed it from the same piecewise-constant accumulation loop as a
/// [`TimeWeighted`]: on every level change, record the span just ended
/// with [`OccupancyHistogram::record_span`]. Zero-width spans are
/// ignored (they carry no time weight), and the caller is responsible
/// for flushing the final open interval before querying.
#[derive(Debug, Clone)]
pub struct OccupancyHistogram {
    /// weight\[major\]\[minor\] in µs of time spent at that level.
    weights: Vec<[u64; 16]>,
    total_micros: u64,
    /// Σ level·µs, for the exact time-weighted mean.
    weighted_sum: u128,
}

impl Default for OccupancyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl OccupancyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        OccupancyHistogram {
            weights: vec![[0; 16]; LOG_LINEAR_MAJORS],
            total_micros: 0,
            weighted_sum: 0,
        }
    }

    /// The level held `depth` for `dt`. Zero-width spans are dropped.
    pub fn record_span(&mut self, depth: u64, dt: SimDuration) {
        let micros = dt.as_micros();
        if micros == 0 {
            return;
        }
        let (major, minor) = log_linear_bucket(depth);
        self.weights[major][minor] += micros;
        self.total_micros += micros;
        self.weighted_sum += depth as u128 * micros as u128;
    }

    /// Total observed time.
    pub fn total_time(&self) -> SimDuration {
        SimDuration(self.total_micros)
    }

    /// Exact time-weighted mean level (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.total_micros == 0 {
            0.0
        } else {
            self.weighted_sum as f64 / self.total_micros as f64
        }
    }

    /// The level not exceeded for fraction `q` of the observed time, as
    /// a bucket lower bound (≤ 6.25% relative error; exact below 16).
    /// Returns zero for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total_micros == 0 {
            return 0;
        }
        let target = ((q * self.total_micros as f64).ceil() as u64).clamp(1, self.total_micros);
        let mut seen = 0;
        for (major, row) in self.weights.iter().enumerate() {
            for (minor, &w) in row.iter().enumerate() {
                seen += w;
                if seen >= target {
                    return log_linear_bucket_value(major, minor);
                }
            }
        }
        unreachable!("total_micros tracks bucket weights");
    }

    /// Shorthand: the time-weighted median level.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand: the level not exceeded 90% of the time.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Shorthand: the level not exceeded 99% of the time.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one; valid because the weights
    /// are plain time integrals, so merging equals having observed both
    /// intervals back to back.
    pub fn merge(&mut self, other: &OccupancyHistogram) {
        for (mine, theirs) in self.weights.iter_mut().zip(other.weights.iter()) {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += t;
            }
        }
        self.total_micros += other.total_micros;
        self.weighted_sum += other.weighted_sum;
    }
}

/// A plain monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// This count divided by `denom` (0 when `denom` is 0).
    pub fn per(&self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_mean_and_variance_match_textbook() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // sample variance of this classic data set is 32/7
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
    }

    #[test]
    fn empty_tally_is_zeroes() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 0.0);
    }

    #[test]
    fn tally_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Tally::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &data[..33] {
            a.record(x);
        }
        for &x in &data[33..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_integral_deltas_telescope() {
        let mut tw = TimeWeighted::new(SimTime(0), 0.0);
        tw.set(SimTime(1_000_000), 3.0);
        let a = tw.integral_seconds(SimTime(2_000_000));
        tw.set(SimTime(2_500_000), 1.0);
        let b = tw.integral_seconds(SimTime(4_000_000));
        // [0,1s): 0, [1s,2s): 3 → a = 3; [2s,2.5s): 3, [2.5s,4s): 1 → b = 3 + 1.5 + 1.5 = 6
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b - 6.0).abs() < 1e-12);
        // per-window deltas sum exactly to the final integral
        assert_eq!((a - 0.0) + (b - a), b);
    }

    #[test]
    fn mser_too_few_samples_is_not_converged() {
        let s = mser_truncation(&[1.0; 7]);
        assert_eq!(s.samples, 7);
        assert!(!s.converged);
    }

    #[test]
    fn mser_flat_series_converges_with_no_truncation() {
        // Constant data: every truncation ties at SE² = 0, and the
        // deterministic first-minimum rule keeps everything.
        let data = [5.0; 20];
        let s = mser_truncation(&data);
        assert!(s.converged);
        assert_eq!(s.truncated, 0);
        assert!((s.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mser_initial_transient_is_truncated() {
        // Ramp-up for 4 samples, then steady around 10.
        let mut data = vec![1.0, 3.0, 6.0, 8.5];
        data.extend((0..16).map(|i| 10.0 + 0.05 * ((i % 3) as f64)));
        let s = mser_truncation(&data);
        assert!(s.converged);
        assert!(s.truncated >= 3, "truncated only {}", s.truncated);
        assert!((s.mean - 10.0).abs() < 0.2);
    }

    #[test]
    fn mser_monotone_drift_never_converges() {
        // A series still climbing linearly at the end: the optimal
        // truncation keeps sliding to the half-way boundary.
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let s = mser_truncation(&data);
        assert!(!s.converged);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime(0), 0.0);
        tw.set(SimTime(10), 2.0); // level 0 on [0,10)
        tw.set(SimTime(30), 1.0); // level 2 on [10,30)
                                  // level 1 on [30,50)
        let avg = tw.time_average(SimTime(50));
        // (0*10 + 2*20 + 1*20) / 50 = 60/50
        assert!((avg - 1.2).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_and_reset() {
        let mut tw = TimeWeighted::new(SimTime(0), 1.0);
        tw.add(SimTime(10), 1.0); // 2 from t=10
        tw.reset(SimTime(10));
        let avg = tw.time_average(SimTime(20));
        assert!((avg - 2.0).abs() < 1e-12);
        assert_eq!(tw.level(), 2.0);
    }

    #[test]
    fn time_weighted_zero_elapsed_returns_level() {
        let mut tw = TimeWeighted::new(SimTime(5), 3.0);
        assert_eq!(tw.time_average(SimTime(5)), 3.0);
    }

    #[test]
    fn batch_means_on_constant_data_has_zero_width() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..100 {
            bm.record(4.2);
        }
        let ci = bm.confidence_interval();
        assert_eq!(ci.batches, 10);
        assert!((ci.mean - 4.2).abs() < 1e-12);
        assert!(ci.half_width < 1e-12);
        assert_eq!(ci.relative_half_width(), 0.0);
    }

    #[test]
    fn batch_means_needs_two_batches() {
        let mut bm = BatchMeans::new(100);
        for i in 0..150 {
            bm.record(i as f64);
        }
        let ci = bm.confidence_interval();
        assert_eq!(ci.batches, 1);
        assert!(ci.half_width.is_infinite());
    }

    #[test]
    fn batch_means_interval_covers_true_mean_of_alternating_data() {
        let mut bm = BatchMeans::new(2);
        for i in 0..1000 {
            bm.record(if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        let ci = bm.confidence_interval();
        assert!((ci.mean - 0.5).abs() < 1e-12);
        assert!(ci.half_width < 1e-9); // each batch mean is exactly 0.5
    }

    #[test]
    fn t_critical_values() {
        assert!((t_critical_90(1) - 6.314).abs() < 1e-9);
        assert!((t_critical_90(10) - 1.812).abs() < 1e-9);
        assert!((t_critical_90(30) - 1.697).abs() < 1e-9);
        assert!((t_critical_90(1000) - 1.645).abs() < 1e-9);
        assert!(t_critical_90(0).is_infinite());
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = DurationHistogram::new();
        for us in 0..32u64 {
            h.record(SimDuration(us));
        }
        assert_eq!(h.count(), 32);
        // 0..32 µs lie in exact buckets; the 16th smallest of 0..=31 is 15
        assert_eq!(h.quantile(0.5), SimDuration(15));
        assert_eq!(h.quantile(1.0), SimDuration(31));
        assert_eq!(h.quantile(1.0 / 32.0), SimDuration(0));
    }

    #[test]
    fn histogram_quantiles_within_relative_error() {
        let mut h = DurationHistogram::new();
        // 1..=10_000 ms, uniformly
        for ms in 1..=10_000u64 {
            h.record(SimDuration::from_millis(ms));
        }
        for (q, expect_ms) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).as_millis_f64();
            let rel = (got - expect_ms).abs() / expect_ms;
            assert!(
                rel < 0.07,
                "q={q}: got {got}, expected ~{expect_ms} (rel {rel:.3})"
            );
        }
        let mean = h.mean().as_millis_f64();
        assert!(
            (mean - 5_000.5).abs() < 1.0,
            "exact mean expected, got {mean}"
        );
    }

    #[test]
    fn histogram_empty_and_shorthands() {
        let h = DurationHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p50(), SimDuration::ZERO);
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_secs(2));
        assert_eq!(h.p50(), h.p99());
        assert!(h.p95().as_secs_f64() > 1.8 && h.p95().as_secs_f64() <= 2.0);
    }

    #[test]
    fn histogram_merge_equals_sequential() {
        let mut whole = DurationHistogram::new();
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        for ms in 1..=1_000u64 {
            whole.record(SimDuration::from_millis(ms));
            if ms % 3 == 0 {
                a.record(SimDuration::from_millis(ms));
            } else {
                b.record(SimDuration::from_millis(ms));
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_p90_orders_between_p50_and_p95() {
        let mut h = DurationHistogram::new();
        for ms in 1..=10_000u64 {
            h.record(SimDuration::from_millis(ms));
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p95());
        let rel = (h.p90().as_millis_f64() - 9_000.0).abs() / 9_000.0;
        assert!(rel < 0.07, "p90 = {}", h.p90().as_millis_f64());
    }

    #[test]
    fn histogram_saturates_on_huge_values() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_secs(100_000)); // 10^11 µs > 2^32 µs
        assert!(h.quantile(1.0).as_micros() >= 1 << 32);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_rejects_bad_quantile() {
        DurationHistogram::new().quantile(1.5);
    }

    #[test]
    fn occupancy_zero_width_spans_are_ignored() {
        let mut h = OccupancyHistogram::new();
        h.record_span(7, SimDuration(0));
        assert_eq!(h.total_time(), SimDuration::ZERO);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
        // A zero-width span between real spans must not perturb them.
        h.record_span(2, SimDuration(10));
        h.record_span(9, SimDuration(0));
        h.record_span(2, SimDuration(10));
        assert_eq!(h.total_time(), SimDuration(20));
        assert_eq!(h.p50(), 2);
        assert_eq!(h.quantile(1.0), 2);
    }

    #[test]
    fn occupancy_quantiles_are_time_weighted() {
        let mut h = OccupancyHistogram::new();
        // Depth 0 for 90 µs, depth 5 for 9 µs, depth 12 for 1 µs.
        h.record_span(0, SimDuration(90));
        h.record_span(5, SimDuration(9));
        h.record_span(12, SimDuration(1));
        assert_eq!(h.total_time(), SimDuration(100));
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p90(), 0); // exactly 90% of time at depth 0
        assert_eq!(h.quantile(0.95), 5);
        assert_eq!(h.p99(), 5);
        assert_eq!(h.quantile(1.0), 12);
        // Mean is exact: (0*90 + 5*9 + 12*1) / 100
        assert!((h.mean() - 0.57).abs() < 1e-12);
    }

    #[test]
    fn occupancy_small_depths_are_exact() {
        let mut h = OccupancyHistogram::new();
        for depth in 0..16u64 {
            h.record_span(depth, SimDuration(1));
        }
        // Uniform time at depths 0..=15: the median µs falls at depth 7.
        assert_eq!(h.p50(), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn occupancy_merge_equals_sequential() {
        let mut whole = OccupancyHistogram::new();
        let mut a = OccupancyHistogram::new();
        let mut b = OccupancyHistogram::new();
        for depth in 0..200u64 {
            let dt = SimDuration(depth % 17 + 1);
            whole.record_span(depth, dt);
            if depth % 2 == 0 {
                a.record_span(depth, dt);
            } else {
                b.record_span(depth, dt);
            }
        }
        a.merge(&b);
        assert_eq!(a.total_time(), whole.total_time());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn occupancy_large_depths_within_relative_error() {
        let mut h = OccupancyHistogram::new();
        h.record_span(1000, SimDuration(100));
        let p = h.p50();
        assert!(p <= 1000 && p as f64 >= 1000.0 * (1.0 - 0.0625), "p50={p}");
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn occupancy_rejects_bad_quantile() {
        OccupancyHistogram::new().quantile(-0.1);
    }

    #[test]
    fn counter_ratios() {
        let mut c = Counter::default();
        c.bump();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.per(4), 2.5);
        assert_eq!(c.per(0), 0.0);
    }
}

// Seeded-loop generative tests (former proptest suite, rewritten as
// deterministic randomized loops over the same input space).
#[cfg(test)]
mod generative_tests {
    use super::*;
    use crate::rng::SimRng;

    fn random_vec(r: &mut SimRng, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = r.uniform_usize(min_len, max_len);
        (0..len).map(|_| lo + r.f64() * (hi - lo)).collect()
    }

    /// Welford mean equals the naive mean.
    #[test]
    fn tally_matches_naive() {
        let mut r = SimRng::new(0x7A11_0001);
        for _ in 0..100 {
            let xs = random_vec(&mut r, 1, 299, -1e6, 1e6);
            let mut t = Tally::new();
            for &x in &xs {
                t.record(x);
            }
            let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
            assert!((t.mean() - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
            if xs.len() >= 2 {
                let naive_var = xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>()
                    / (xs.len() - 1) as f64;
                assert!((t.variance() - naive_var).abs() < 1e-4 * (1.0 + naive_var.abs()));
            }
        }
    }

    /// Merging arbitrary splits equals sequential recording.
    #[test]
    fn merge_is_split_invariant() {
        let mut r = SimRng::new(0x7A11_0002);
        for _ in 0..100 {
            let xs = random_vec(&mut r, 2, 199, -1e3, 1e3);
            let split = r.uniform_usize(0, xs.len() - 1);
            let mut whole = Tally::new();
            for &x in &xs {
                whole.record(x);
            }
            let mut a = Tally::new();
            let mut b = Tally::new();
            for &x in &xs[..split] {
                a.record(x);
            }
            for &x in &xs[split..] {
                b.record(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-6);
            assert!((a.variance() - whole.variance()).abs() < 1e-4);
        }
    }

    /// Time-weighted average always lies within [min level, max level].
    #[test]
    fn time_average_is_bounded() {
        let mut r = SimRng::new(0x7A11_0003);
        for _ in 0..100 {
            let n = r.uniform_usize(1, 99);
            let mut tw = TimeWeighted::new(SimTime(0), 5.0);
            let mut t = 0u64;
            let mut lo = 5.0f64;
            let mut hi = 5.0f64;
            for _ in 0..n {
                t += r.uniform_u64(1, 99);
                let level = r.f64() * 10.0;
                tw.set(SimTime(t), level);
                lo = lo.min(level);
                hi = hi.max(level);
            }
            let avg = tw.time_average(SimTime(t + 10));
            assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        }
    }

    /// Histogram quantiles are within the bucket resolution of the true
    /// order statistics, for arbitrary data.
    #[test]
    fn histogram_matches_sorted_reference() {
        let mut r = SimRng::new(0x7A11_0004);
        for _ in 0..100 {
            let len = r.uniform_usize(1, 299);
            let us: Vec<u64> = (0..len).map(|_| r.uniform_u64(0, 9_999_999)).collect();
            let q = r.f64();
            let mut h = DurationHistogram::new();
            for &v in &us {
                h.record(SimDuration(v));
            }
            let mut sorted = us.clone();
            sorted.sort_unstable();
            let idx = ((q * us.len() as f64).ceil() as usize).clamp(1, us.len()) - 1;
            let truth = sorted[idx] as f64;
            let got = h.quantile(q).as_micros() as f64;
            // bucket lower bound: within 6.25% below the true value
            assert!(got <= truth + 1.0, "got {got}, truth {truth}");
            assert!(
                got >= truth * (1.0 - 0.0625) - 1.0,
                "got {got}, truth {truth}"
            );
        }
    }

    /// BatchMeans grand mean equals the plain mean of all complete batches.
    #[test]
    fn batch_means_grand_mean() {
        let mut r = SimRng::new(0x7A11_0005);
        for _ in 0..100 {
            let xs = random_vec(&mut r, 10, 299, 0.0, 100.0);
            let batch = 5u64;
            let mut bm = BatchMeans::new(batch);
            for &x in &xs {
                bm.record(x);
            }
            let complete = (xs.len() as u64 / batch * batch) as usize;
            if complete > 0 {
                let expect = xs[..complete].iter().sum::<f64>() / complete as f64;
                let ci = bm.confidence_interval();
                assert!((ci.mean - expect).abs() < 1e-6);
            }
        }
    }
}
