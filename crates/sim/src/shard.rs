//! Future-event list for one shard of a conservative parallel run.
//!
//! The serial [`crate::Calendar`] breaks same-instant ties by insertion
//! order, which is deterministic for a single event loop but *not*
//! invariant under sharding: when sites are split across shards, the
//! interleaving of insertions into any one calendar depends on which
//! sites share it. [`ShardCalendar`] instead orders events by an
//! explicit **canonical key** supplied by the caller — in the engine,
//! `origin_site << 48 | per_site_seq`, stamped when the event is
//! scheduled. Because every site stamps its own monotone sequence and
//! site-local processing order does not depend on the shard layout, the
//! `(time, key)` order of any subset of events is the same no matter
//! how sites are partitioned. That property is what makes the parallel
//! engine's output independent of `--shards`.
//!
//! The structure mirrors `Calendar`'s layout — a min-heap of small
//! packed keys over a slot arena recycled through a free list — minus
//! the current-instant fast path (a shard's clock is driven from
//! outside by the window loop, so "now" is not a privileged instant).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry: `(time, canonical key, payload slot)`. Canonical keys
/// are unique per run (site ⊕ per-site sequence), so the slot field
/// never participates in a comparison.
type Key = (u64, u64, u32);

/// A future-event list ordered by `(time, canonical key)`.
///
/// The clock advances when an event is popped, and can be pushed
/// forward explicitly by the window loop via
/// [`ShardCalendar::advance_to`] at a time-window barrier (so that
/// post-barrier scheduling asserts against the window edge rather than
/// the last popped instant).
#[derive(Debug)]
pub struct ShardCalendar<E> {
    heap: BinaryHeap<Reverse<Key>>,
    /// Slot arena for pending payloads; `None` marks a free slot.
    events: Vec<Option<E>>,
    /// Indices of free slots in `events`.
    free: Vec<u32>,
    now: SimTime,
    scheduled: u64,
    dispatched: u64,
}

impl<E> Default for ShardCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ShardCalendar<E> {
    /// An empty calendar with the clock at time zero.
    pub fn new() -> Self {
        ShardCalendar {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            now: SimTime::ZERO,
            scheduled: 0,
            dispatched: 0,
        }
    }

    /// Current shard-local clock.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostics).
    #[inline]
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events ever dispatched (diagnostics).
    #[inline]
    pub fn dispatched_count(&self) -> u64 {
        self.dispatched
    }

    /// Schedule `event` at the absolute instant `at` under canonical
    /// key `key`. Keys must be unique across the run; `at` must not
    /// precede the clock.
    pub fn schedule(&mut self, at: SimTime, key: u64, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.scheduled += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.events[s as usize].is_none());
                self.events[s as usize] = Some(event);
                s
            }
            None => {
                let s = u32::try_from(self.events.len()).expect("shard calendar slot overflow");
                self.events.push(Some(event));
                s
            }
        };
        self.heap.push(Reverse((at.0, key, slot)));
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|&Reverse((t, _, _))| SimTime(t))
    }

    /// Pop the next event if it fires strictly before `horizon`,
    /// advancing the clock to its firing time. Events at or after the
    /// horizon belong to a later window and stay queued.
    pub fn next_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let &Reverse((t, _, _)) = self.heap.peek()?;
        if t >= horizon.0 {
            return None;
        }
        let Reverse((t, _, slot)) = self.heap.pop().expect("peeked above");
        debug_assert!(t >= self.now.0);
        self.now = SimTime(t);
        self.dispatched += 1;
        let event = self.events[slot as usize]
            .take()
            .expect("heap key points at an empty slot");
        self.free.push(slot);
        Some((SimTime(t), event))
    }

    /// Push the clock forward to `t` (a window barrier). No-op if the
    /// clock is already at or past `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_key_order() {
        let mut cal = ShardCalendar::new();
        cal.schedule(SimTime(10), 7, "b2");
        cal.schedule(SimTime(10), 3, "b1");
        cal.schedule(SimTime(5), 9, "a");
        cal.schedule(SimTime(20), 1, "c");
        let mut out = Vec::new();
        while let Some((_, e)) = cal.next_before(SimTime(u64::MAX)) {
            out.push(e);
        }
        assert_eq!(out, vec!["a", "b1", "b2", "c"]);
    }

    #[test]
    fn order_is_independent_of_insertion_order() {
        // The defining property: any interleaving of the same keyed
        // events pops identically.
        let evs = [(4u64, 20u64), (4, 5), (9, 1), (2, 99), (4, 7)];
        let mut perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3, 4],
            vec![4, 3, 2, 1, 0],
            vec![2, 0, 4, 1, 3],
        ];
        let mut reference: Option<Vec<usize>> = None;
        for perm in perms.drain(..) {
            let mut cal = ShardCalendar::new();
            for &i in &perm {
                let (t, k) = evs[i];
                cal.schedule(SimTime(t), k, i);
            }
            let mut out = Vec::new();
            while let Some((_, e)) = cal.next_before(SimTime(u64::MAX)) {
                out.push(e);
            }
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r),
            }
        }
    }

    #[test]
    fn horizon_bounds_the_window() {
        let mut cal = ShardCalendar::new();
        cal.schedule(SimTime(5), 1, "in");
        cal.schedule(SimTime(10), 2, "edge");
        cal.schedule(SimTime(15), 3, "out");
        let mut out = Vec::new();
        while let Some((_, e)) = cal.next_before(SimTime(10)) {
            out.push(e);
        }
        // [0, 10): the event *at* the horizon stays queued.
        assert_eq!(out, vec!["in"]);
        assert_eq!(cal.pending(), 2);
        cal.advance_to(SimTime(10));
        assert_eq!(cal.now(), SimTime(10));
        let (t, e) = cal.next_before(SimTime(20)).unwrap();
        assert_eq!((t, e), (SimTime(10), "edge"));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut cal: ShardCalendar<()> = ShardCalendar::new();
        cal.advance_to(SimTime(50));
        cal.advance_to(SimTime(30));
        assert_eq!(cal.now(), SimTime(50));
    }

    #[test]
    fn counters_and_slot_reuse() {
        let mut cal = ShardCalendar::new();
        for i in 0..10u64 {
            cal.schedule(SimTime(i), i, i);
        }
        for _ in 0..10 {
            cal.next_before(SimTime(u64::MAX)).unwrap();
        }
        // Freed slots are recycled: scheduling again must not grow the arena.
        let arena = cal.events.len();
        for i in 10..20u64 {
            cal.schedule(SimTime(i), i, i);
        }
        assert_eq!(cal.events.len(), arena);
        assert_eq!(cal.scheduled_count(), 20);
        assert_eq!(cal.dispatched_count(), 10);
        assert!(!cal.is_empty());
        assert_eq!(cal.peek_time(), Some(SimTime(10)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)] // the guard is a debug_assert; release compiles it out
    fn scheduling_into_the_past_panics_in_debug() {
        let mut cal = ShardCalendar::new();
        cal.schedule(SimTime(10), 1, ());
        cal.next_before(SimTime(u64::MAX));
        cal.schedule(SimTime(5), 2, ());
    }
}
