//! The future-event list.
//!
//! A classic calendar for discrete-event simulation: events are
//! scheduled at absolute instants and popped in time order. Events
//! scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO), which keeps runs deterministic — a requirement for
//! the reproducibility guarantees this repository makes about every
//! experiment.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A packed 16-byte heap key: the firing time in the first word, then
/// `seq` (40 bits) over `slot` (24 bits) in the second. Tuple order is
/// `(time, seq, slot)`; `seq` values are unique, so the slot bits are
/// never reached by a comparison and simultaneous events preserve
/// scheduling order exactly as they did when the payload lived inside
/// the heap entry. The packing bounds are asserted at push: 2^40
/// events per run and 2^24 simultaneously pending events are both
/// orders of magnitude beyond what a simulation reaches.
type Key = (u64, u64);

const SLOT_BITS: u32 = 24;

#[inline]
fn pack(at: SimTime, seq: u64, slot: u32) -> Key {
    assert!(seq < 1 << (64 - SLOT_BITS), "calendar seq overflow");
    assert!(slot < 1 << SLOT_BITS, "calendar slot overflow");
    (at.0, (seq << SLOT_BITS) | slot as u64)
}

#[inline]
fn unpack(key: Key) -> (SimTime, u64, u32) {
    (
        SimTime(key.0),
        key.1 >> SLOT_BITS,
        (key.1 & ((1 << SLOT_BITS) - 1)) as u32,
    )
}

/// The event calendar: a min-heap of `(time, seq, slot)` keys plus a
/// slot arena holding the event payloads, plus the simulation clock.
///
/// The clock only advances when an event is popped; scheduling in the
/// past is a logic error and panics in debug builds.
///
/// # Current-instant fast path
///
/// Events scheduled for the *current* instant — the dominant case in
/// the engine, whose handlers chain zero-delay continuations — bypass
/// the heap entirely and go to `now_q`, a FIFO of `(seq, event)`. This
/// is order-exact, not an approximation: delivery order is `(time,
/// seq)`, the clock cannot advance while a current-instant event is
/// pending (the earliest pending key *is* at `now`), so every `now_q`
/// entry fires before the clock moves, and `next()` breaks the
/// remaining tie — a heap event also at `now` but scheduled earlier —
/// by comparing seqs. O(1) push/pop replaces two O(log n) sifts for
/// every same-instant event.
///
/// # Allocation audit
///
/// Heap entries are packed 16-byte `(time, seq, slot)` keys; the payloads sit
/// out-of-line in `events`, a slot arena recycled through a free list.
/// Sift-up/sift-down therefore moves small fixed-size keys instead of
/// full event enums (~80 bytes for the engine's event type), which is
/// what the `memmove` traffic in profiles was. The steady-state
/// schedule/pop cycle performs **no per-event heap allocation**: a push
/// only allocates when the heap buffer, slot arena, or now-queue grows,
/// and every high-water mark is bounded by the simulation's maximum
/// event population (a few hundred entries at paper-scale MPLs), after
/// which every push reuses freed capacity and every slot comes off the
/// free list. The event payloads themselves are plain enums — the only
/// boxed field in the engine's event type is the restart template
/// carried by a resubmission, which is allocated once per abort, not
/// per event. This is why the calendar is left as a binary heap rather
/// than a bucketed calendar queue: the heap is allocation-free in
/// steady state, and the calendar-queue literature's win (cheap
/// same-priority inserts) is already captured by `now_q`.
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Key>>,
    /// Slot arena for pending payloads; `None` marks a free slot.
    events: Vec<Option<E>>,
    /// Indices of free slots in `events`.
    free: Vec<u32>,
    /// FIFO of events scheduled at the current instant (see above).
    now_q: VecDeque<(u64, E)>,
    now: SimTime,
    seq: u64,
    scheduled: u64,
    dispatched: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar with the clock at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            now_q: VecDeque::new(),
            now: SimTime::ZERO,
            seq: 0,
            scheduled: 0,
            dispatched: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len() + self.now_q.len()
    }

    /// True when no events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.now_q.is_empty()
    }

    /// Total events ever scheduled (diagnostics).
    #[inline]
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events ever dispatched (diagnostics).
    #[inline]
    pub fn dispatched_count(&self) -> u64 {
        self.dispatched
    }

    /// Schedule `event` to fire at the absolute instant `at`.
    ///
    /// `at` must not precede the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        if at == self.now {
            self.now_q.push_back((seq, event));
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.events[s as usize].is_none());
                self.events[s as usize] = Some(event);
                s
            }
            None => {
                let s = u32::try_from(self.events.len()).expect("calendar slot overflow");
                self.events.push(Some(event));
                s
            }
        };
        self.heap.push(Reverse(pack(at, seq, slot)));
    }

    /// Schedule `event` to fire `delay` after the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` to fire at the current instant, after every
    /// event already scheduled for this instant.
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Pop the next event, advancing the clock to its firing time.
    ///
    /// Deliberately *not* an `Iterator`: handlers schedule further
    /// events between pops, so holding an iterator would borrow the
    /// calendar across exactly the calls that need `&mut` access.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        // A `now_q` event fires unless a heap event also due at `now`
        // was scheduled earlier (smaller seq).
        let take_heap = match (self.heap.peek(), self.now_q.front()) {
            (Some(&Reverse(k)), Some(&(fs, _))) => {
                let (t, s, _) = unpack(k);
                (t, s) < (self.now, fs)
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        self.dispatched += 1;
        if take_heap {
            let (time, _seq, slot) = unpack(self.heap.pop().expect("peeked above").0);
            debug_assert!(time >= self.now);
            self.now = time;
            let event = self.events[slot as usize]
                .take()
                .expect("heap key points at an empty slot");
            self.free.push(slot);
            Some((time, event))
        } else {
            let (_, event) = self.now_q.pop_front().expect("checked above");
            Some((self.now, event))
        }
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.now_q.is_empty() {
            self.heap.peek().map(|&Reverse(k)| unpack(k).0)
        } else {
            Some(self.now)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(30), "c");
        cal.schedule_at(SimTime(10), "a");
        cal.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| cal.next()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100u32 {
            cal.schedule_at(SimTime(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.next()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(5), ());
        cal.schedule_at(SimTime(9), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.next();
        assert_eq!(cal.now(), SimTime(5));
        cal.next();
        assert_eq!(cal.now(), SimTime(9));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(100), 1);
        cal.next();
        cal.schedule_in(SimDuration(50), 2);
        let (t, e) = cal.next().unwrap();
        assert_eq!((t, e), (SimTime(150), 2));
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(7), "first");
        cal.schedule_at(SimTime(7), "second");
        let (_, e) = cal.next().unwrap();
        assert_eq!(e, "first");
        cal.schedule_now("third");
        let (_, e) = cal.next().unwrap();
        assert_eq!(e, "second");
        let (t, e) = cal.next().unwrap();
        assert_eq!((t, e), (SimTime(7), "third"));
    }

    #[test]
    fn counters_track_flow() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(1), ());
        cal.schedule_at(SimTime(2), ());
        assert_eq!(cal.scheduled_count(), 2);
        assert_eq!(cal.pending(), 2);
        cal.next();
        assert_eq!(cal.dispatched_count(), 1);
        assert_eq!(cal.pending(), 1);
        assert!(!cal.is_empty());
        cal.next();
        assert!(cal.is_empty());
        assert!(cal.next().is_none());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(11), ());
        assert_eq!(cal.peek_time(), Some(SimTime(11)));
        assert_eq!(cal.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)] // the guard is a debug_assert; release compiles it out
    fn scheduling_into_the_past_panics_in_debug() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(10), ());
        cal.next();
        cal.schedule_at(SimTime(5), ());
    }
}

// Seeded-loop generative tests (former proptest suite, rewritten as
// deterministic randomized loops over the same input space).
#[cfg(test)]
mod generative_tests {
    use super::*;
    use crate::rng::SimRng;

    fn random_times(r: &mut SimRng) -> Vec<u64> {
        let len = r.uniform_usize(1, 199);
        (0..len).map(|_| r.uniform_u64(0, 999)).collect()
    }

    /// Popping the calendar yields exactly the multiset of scheduled
    /// events, sorted by (time, insertion order) — i.e. a stable sort.
    #[test]
    fn calendar_is_a_stable_priority_queue() {
        let mut r = SimRng::new(0xCA1E_11DA);
        for _ in 0..100 {
            let times = random_times(&mut r);
            let mut cal = Calendar::new();
            for (i, &t) in times.iter().enumerate() {
                cal.schedule_at(SimTime(t), i);
            }
            let mut reference: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            reference.sort(); // (time, seq) — seq equals insertion index here
            let popped: Vec<(u64, usize)> = std::iter::from_fn(|| cal.next())
                .map(|(t, i)| (t.0, i))
                .collect();
            assert_eq!(popped, reference);
        }
    }

    /// The clock is monotone no matter the schedule.
    #[test]
    fn clock_is_monotone() {
        let mut r = SimRng::new(0xC10C_7151);
        for _ in 0..100 {
            let times = random_times(&mut r);
            let mut cal = Calendar::new();
            for &t in &times {
                cal.schedule_at(SimTime(t), ());
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = cal.next() {
                assert!(t >= last);
                last = t;
            }
        }
    }
}
