//! The future-event list.
//!
//! A classic calendar for discrete-event simulation: events are
//! scheduled at absolute instants and popped in time order. Events
//! scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO), which keeps runs deterministic — a requirement for
//! the reproducibility guarantees this repository makes about every
//! experiment.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled entry: ordering key is `(time, seq)` so simultaneous
/// events preserve scheduling order.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event calendar: a min-heap of `(time, seq, event)` plus the
/// simulation clock.
///
/// The clock only advances when an event is popped; scheduling in the
/// past is a logic error and panics in debug builds.
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
    scheduled: u64,
    dispatched: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar with the clock at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            scheduled: 0,
            dispatched: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostics).
    #[inline]
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events ever dispatched (diagnostics).
    #[inline]
    pub fn dispatched_count(&self) -> u64 {
        self.dispatched
    }

    /// Schedule `event` to fire at the absolute instant `at`.
    ///
    /// `at` must not precede the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Schedule `event` to fire `delay` after the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` to fire at the current instant, after every
    /// event already scheduled for this instant.
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Pop the next event, advancing the clock to its firing time.
    ///
    /// Deliberately *not* an `Iterator`: handlers schedule further
    /// events between pops, so holding an iterator would borrow the
    /// calendar across exactly the calls that need `&mut` access.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.dispatched += 1;
        Some((entry.time, entry.event))
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(30), "c");
        cal.schedule_at(SimTime(10), "a");
        cal.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| cal.next()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100u32 {
            cal.schedule_at(SimTime(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.next()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(5), ());
        cal.schedule_at(SimTime(9), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.next();
        assert_eq!(cal.now(), SimTime(5));
        cal.next();
        assert_eq!(cal.now(), SimTime(9));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(100), 1);
        cal.next();
        cal.schedule_in(SimDuration(50), 2);
        let (t, e) = cal.next().unwrap();
        assert_eq!((t, e), (SimTime(150), 2));
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(7), "first");
        cal.schedule_at(SimTime(7), "second");
        let (_, e) = cal.next().unwrap();
        assert_eq!(e, "first");
        cal.schedule_now("third");
        let (_, e) = cal.next().unwrap();
        assert_eq!(e, "second");
        let (t, e) = cal.next().unwrap();
        assert_eq!((t, e), (SimTime(7), "third"));
    }

    #[test]
    fn counters_track_flow() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(1), ());
        cal.schedule_at(SimTime(2), ());
        assert_eq!(cal.scheduled_count(), 2);
        assert_eq!(cal.pending(), 2);
        cal.next();
        assert_eq!(cal.dispatched_count(), 1);
        assert_eq!(cal.pending(), 1);
        assert!(!cal.is_empty());
        cal.next();
        assert!(cal.is_empty());
        assert!(cal.next().is_none());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(11), ());
        assert_eq!(cal.peek_time(), Some(SimTime(11)));
        assert_eq!(cal.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)] // the guard is a debug_assert; release compiles it out
    fn scheduling_into_the_past_panics_in_debug() {
        let mut cal = Calendar::new();
        cal.schedule_at(SimTime(10), ());
        cal.next();
        cal.schedule_at(SimTime(5), ());
    }
}

// Seeded-loop generative tests (former proptest suite, rewritten as
// deterministic randomized loops over the same input space).
#[cfg(test)]
mod generative_tests {
    use super::*;
    use crate::rng::SimRng;

    fn random_times(r: &mut SimRng) -> Vec<u64> {
        let len = r.uniform_usize(1, 199);
        (0..len).map(|_| r.uniform_u64(0, 999)).collect()
    }

    /// Popping the calendar yields exactly the multiset of scheduled
    /// events, sorted by (time, insertion order) — i.e. a stable sort.
    #[test]
    fn calendar_is_a_stable_priority_queue() {
        let mut r = SimRng::new(0xCA1E_11DA);
        for _ in 0..100 {
            let times = random_times(&mut r);
            let mut cal = Calendar::new();
            for (i, &t) in times.iter().enumerate() {
                cal.schedule_at(SimTime(t), i);
            }
            let mut reference: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            reference.sort(); // (time, seq) — seq equals insertion index here
            let popped: Vec<(u64, usize)> = std::iter::from_fn(|| cal.next())
                .map(|(t, i)| (t.0, i))
                .collect();
            assert_eq!(popped, reference);
        }
    }

    /// The clock is monotone no matter the schedule.
    #[test]
    fn clock_is_monotone() {
        let mut r = SimRng::new(0xC10C_7151);
        for _ in 0..100 {
            let times = random_times(&mut r);
            let mut cal = Calendar::new();
            for &t in &times {
                cal.schedule_at(SimTime(t), ());
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = cal.next() {
                assert!(t >= last);
                last = t;
            }
        }
    }
}
