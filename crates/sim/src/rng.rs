//! Deterministic random-number facade.
//!
//! All stochastic choices in the model (page selection, remote-site
//! selection, cohort sizes, update draws, surprise-abort votes) go
//! through [`SimRng`], a thin wrapper over a seeded [`rand::rngs::StdRng`].
//! Given the same seed, every run of every experiment is bit-for-bit
//! reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Seeded RNG with the sampling helpers the workload generator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream for a sub-component; mixing in
    /// `stream` keeps sibling components decorrelated.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.rng.gen();
        SimRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        self.rng.gen_range(lo..=hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen_bool(p)
        }
    }

    /// The paper's cohort-size draw: uniform over
    /// `[0.5 * mean, 1.5 * mean]`, rounded to integers, never below 1.
    pub fn around_mean(&mut self, mean: u32) -> u32 {
        let lo = mean / 2;
        let hi = mean + mean / 2;
        self.uniform_u64(lo.max(1) as u64, hi.max(1) as u64) as u32
    }

    /// Sample `k` distinct values from `0..n` (uniform, without
    /// replacement). Order is random.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        // Partial Fisher–Yates over an index vector for small n; for
        // large n with small k, rejection sampling is cheaper.
        if k * 4 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = self.uniform_usize(i, n - 1);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            let mut chosen = Vec::with_capacity(k);
            while chosen.len() < k {
                let v = self.uniform_usize(0, n - 1);
                if !chosen.contains(&v) {
                    chosen.push(v);
                }
            }
            chosen
        }
    }

    /// Pick one element of a slice uniformly.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        items.choose(&mut self.rng).expect("pick from empty slice")
    }

    /// Raw f64 in [0,1).
    pub fn f64(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(3);
        let mut fb = b.fork(3);
        assert_eq!(fa.uniform_u64(0, 999), fb.uniform_u64(0, 999));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..=3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn around_mean_covers_paper_range() {
        let mut r = SimRng::new(13);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let v = r.around_mean(6);
            assert!((3..=9).contains(&v), "got {v}");
            seen.insert(v);
        }
        // all seven values of U[3,9] should occur
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn around_mean_never_below_one() {
        let mut r = SimRng::new(17);
        for _ in 0..100 {
            assert!(r.around_mean(1) >= 1);
        }
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut r = SimRng::new(21);
        for &(n, k) in &[(10usize, 10usize), (100, 3), (8, 5), (1, 1), (1000, 2)] {
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates in sample");
            assert!(s.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn sample_distinct_zero() {
        let mut r = SimRng::new(23);
        assert!(r.sample_distinct(5, 0).is_empty());
        assert!(r.sample_distinct(0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_overdraw_panics() {
        let mut r = SimRng::new(25);
        r.sample_distinct(3, 4);
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        let mut r = SimRng::new(29);
        let mut counts = [0u32; 8];
        for _ in 0..8_000 {
            for v in r.sample_distinct(8, 2) {
                counts[v] += 1;
            }
        }
        // each slot expects 2000 hits
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_700..=2_300).contains(&c), "slot {i} got {c}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #[test]
        fn sample_distinct_always_valid(seed in 0u64..1000, n in 1usize..200, k_frac in 0usize..=100) {
            let k = n * k_frac / 100;
            let mut r = SimRng::new(seed);
            let s = r.sample_distinct(n, k);
            prop_assert_eq!(s.len(), k);
            let set: HashSet<_> = s.iter().copied().collect();
            prop_assert_eq!(set.len(), k);
            prop_assert!(s.iter().all(|&v| v < n));
        }

        #[test]
        fn around_mean_in_range(seed in 0u64..1000, mean in 1u32..100) {
            let mut r = SimRng::new(seed);
            let v = r.around_mean(mean);
            prop_assert!(v >= (mean / 2).max(1));
            prop_assert!(v <= mean + mean / 2);
        }
    }
}
