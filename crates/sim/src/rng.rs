//! Deterministic random-number facade.
//!
//! All stochastic choices in the model (page selection, remote-site
//! selection, cohort sizes, update draws, surprise-abort votes) go
//! through [`SimRng`], a self-contained xoshiro256++ generator seeded
//! via SplitMix64. Given the same seed, every run of every experiment
//! is bit-for-bit reproducible — and because the generator is
//! implemented here (no external crates), the stream can never shift
//! under a dependency upgrade.

/// SplitMix64 step — used for seeding and for one-shot seed mixing.
///
/// This is the finalizer used by `splitmix64`; it is a bijection on
/// `u64`, which [`mix_seed`] relies on for collision-freedom.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a base seed with up to three grid indices into a well-spread
/// 64-bit seed. Injective in `(base, a, b, c)` for `a < 2^32`,
/// `b < 2^16`, `c < 2^16`: the indices occupy disjoint bit ranges
/// before the (bijective) SplitMix64 finalizer, so distinct cells can
/// never collide for a fixed base.
#[inline]
pub fn mix_seed(base: u64, a: u64, b: u64, c: u64) -> u64 {
    debug_assert!(a < 1 << 32 && b < 1 << 16 && c < 1 << 16);
    let mut s = base ^ (a << 32) ^ (b << 16) ^ c;
    splitmix64(&mut s)
}

/// Seeded RNG with the sampling helpers the workload generator needs.
///
/// The core generator is xoshiro256++ (Blackman & Vigna): 256 bits of
/// state, period 2^256 − 1, and excellent statistical quality for
/// simulation workloads.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro state must not be all-zero; SplitMix64 outputs make
        // this astronomically unlikely, but guard regardless.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent stream for a sub-component; mixing in
    /// `stream` keeps sibling components decorrelated.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Unbiased uniform integer in `[0, n)` (Lemire's method).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        self.uniform_u64(lo as u64, hi as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// The paper's cohort-size draw: uniform over
    /// `[0.5 * mean, 1.5 * mean]`, rounded to integers, never below 1.
    pub fn around_mean(&mut self, mean: u32) -> u32 {
        let lo = mean / 2;
        let hi = mean + mean / 2;
        self.uniform_u64(lo.max(1) as u64, hi.max(1) as u64) as u32
    }

    /// Sample `k` distinct values from `0..n` (uniform, without
    /// replacement). Order is random.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        // Partial Fisher–Yates over an index vector for small n; for
        // large n with small k, rejection sampling is cheaper.
        if k * 4 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = self.uniform_usize(i, n - 1);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            let mut chosen = Vec::with_capacity(k);
            while chosen.len() < k {
                let v = self.uniform_usize(0, n - 1);
                if !chosen.contains(&v) {
                    chosen.push(v);
                }
            }
            chosen
        }
    }

    /// Pick one element of a slice uniformly.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.uniform_usize(0, items.len() - 1)]
    }

    /// Raw f64 in [0,1) with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(3);
        let mut fb = b.fork(3);
        assert_eq!(fa.uniform_u64(0, 999), fb.uniform_u64(0, 999));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn uniform_full_range_does_not_panic() {
        let mut r = SimRng::new(31);
        for _ in 0..10 {
            let _ = r.uniform_u64(0, u64::MAX);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..=3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(15);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn around_mean_covers_paper_range() {
        let mut r = SimRng::new(13);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let v = r.around_mean(6);
            assert!((3..=9).contains(&v), "got {v}");
            seen.insert(v);
        }
        // all seven values of U[3,9] should occur
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn around_mean_never_below_one() {
        let mut r = SimRng::new(17);
        for _ in 0..100 {
            assert!(r.around_mean(1) >= 1);
        }
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut r = SimRng::new(21);
        for &(n, k) in &[(10usize, 10usize), (100, 3), (8, 5), (1, 1), (1000, 2)] {
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates in sample");
            assert!(s.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn sample_distinct_zero() {
        let mut r = SimRng::new(23);
        assert!(r.sample_distinct(5, 0).is_empty());
        assert!(r.sample_distinct(0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_overdraw_panics() {
        let mut r = SimRng::new(25);
        r.sample_distinct(3, 4);
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        let mut r = SimRng::new(29);
        let mut counts = [0u32; 8];
        for _ in 0..8_000 {
            for v in r.sample_distinct(8, 2) {
                counts[v] += 1;
            }
        }
        // each slot expects 2000 hits
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_700..=2_300).contains(&c), "slot {i} got {c}");
        }
    }

    #[test]
    fn pick_is_uniformish() {
        let items = [0usize, 1, 2, 3];
        let mut r = SimRng::new(33);
        let mut counts = [0u32; 4];
        for _ in 0..8_000 {
            counts[*r.pick(&items)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_700..=2_300).contains(&c), "slot {i} got {c}");
        }
    }

    #[test]
    #[should_panic(expected = "pick from empty slice")]
    fn pick_empty_panics() {
        let mut r = SimRng::new(35);
        let empty: [u8; 0] = [];
        r.pick(&empty);
    }

    #[test]
    fn mix_seed_is_collision_free_on_grids() {
        let mut seen = HashSet::new();
        for a in 0..16u64 {
            for b in 0..12u64 {
                for c in 0..8u64 {
                    assert!(
                        seen.insert(mix_seed(42, a, b, c)),
                        "collision at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    // Deterministic replacements for the former proptest suite: a
    // seeded loop over randomized inputs exercises the same properties
    // without an external property-testing dependency.

    #[test]
    fn sample_distinct_always_valid_randomized() {
        let mut meta = SimRng::new(0xDECADE);
        for _ in 0..300 {
            let n = meta.uniform_usize(1, 199);
            let k = n * meta.uniform_usize(0, 100) / 100;
            let mut r = SimRng::new(meta.next_u64());
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: HashSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), k);
            assert!(s.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn around_mean_in_range_randomized() {
        let mut meta = SimRng::new(0xFACADE);
        for _ in 0..500 {
            let mean = meta.uniform_u64(1, 99) as u32;
            let mut r = SimRng::new(meta.next_u64());
            let v = r.around_mean(mean);
            assert!(v >= (mean / 2).max(1));
            assert!(v <= mean + mean / 2);
        }
    }
}
