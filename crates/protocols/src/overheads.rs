//! The analytic overhead model (Tables 3 and 4 of the paper).
//!
//! Counts of messages and forced log writes per transaction, derived
//! from the declarative [`crate::spec::SpecTable`] row — the same data
//! the simulation engine interprets, so the two can be cross-checked
//! per transaction. Conventions, matching the paper's tables:
//!
//! * A "message" is one network transfer. The master and its
//!   co-located cohort communicate for free, so with `DistDegree = d`
//!   there are `d − 1` *remote* cohorts and e.g. 2PC commits with
//!   `4(d−1)` commit messages (PREPARE, YES, COMMIT, ACK each to/from
//!   every remote cohort) — 8 at `d = 3`, exactly Table 3.
//! * A "forced write" is one synchronous log-disk write; *every* cohort
//!   (including the master-site cohort) logs, so 2PC commits with
//!   `2d + 1` forced writes (prepare + commit per cohort, plus the
//!   master decision record) — 7 at `d = 3`.

use crate::spec::{ProtocolSpec, Routing};

/// Message and forced-write counts for one transaction outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Overheads {
    /// Messages exchanged during the execution phase (cohort initiation
    /// plus WORKDONE, remote cohorts only).
    pub exec_messages: u64,
    /// Messages exchanged by the commit protocol proper.
    pub commit_messages: u64,
    /// Synchronous (forced) log writes across all sites.
    pub forced_writes: u64,
}

impl Overheads {
    /// Total messages, execution plus commit.
    pub fn total_messages(&self) -> u64 {
        self.exec_messages + self.commit_messages
    }
}

/// An abort outcome for the analytic model: which cohorts voted NO.
///
/// The paper's §5.7 "surprise aborts" draw NO votes independently at
/// each cohort; this struct describes one concrete outcome so the
/// formulas stay exact (message counts depend on *where* the NO voters
/// sit because local messages are free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortScenario {
    /// Degree of distribution (number of cohorts, master site included).
    pub dist_degree: u32,
    /// NO voters among the `dist_degree - 1` remote cohorts.
    pub remote_no_voters: u32,
    /// Did the master-site cohort vote NO?
    pub local_no_voter: bool,
}

impl AbortScenario {
    /// Total NO voters.
    pub fn no_voters(&self) -> u32 {
        self.remote_no_voters + u32::from(self.local_no_voter)
    }

    /// Cohorts that voted YES (and therefore reached the prepared state).
    pub fn prepared(&self) -> u32 {
        self.dist_degree - self.no_voters()
    }

    /// Remote cohorts that voted YES.
    pub fn remote_prepared(&self) -> u32 {
        (self.dist_degree - 1) - self.remote_no_voters
    }
}

/// A committing transaction under the Read-Only optimization (§3.2):
/// cohorts that updated nothing vote READ in phase one, release their
/// locks, and drop out — no forced records, no decision message, no
/// acknowledgement at those cohorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOnlyScenario {
    /// Degree of distribution (number of cohorts, master site included).
    pub dist_degree: u32,
    /// Read-only cohorts among the `dist_degree - 1` remote cohorts.
    pub remote_read_only: u32,
    /// Is the master-site cohort read-only?
    pub local_read_only: bool,
}

impl ReadOnlyScenario {
    /// Cohorts that updated data and run the full protocol.
    pub fn participants(&self) -> u32 {
        self.dist_degree - self.remote_read_only - u32::from(self.local_read_only)
    }

    /// Remote cohorts that run the full protocol.
    pub fn remote_participants(&self) -> u32 {
        (self.dist_degree - 1) - self.remote_read_only
    }
}

impl ProtocolSpec {
    /// Overheads of one *committing* transaction at the given degree of
    /// distribution. Reproduces Table 3 (`dist_degree = 3`) and Table 4
    /// (`dist_degree = 6`). OPT does not change the schedule, so the
    /// counts are those of the base protocol.
    pub fn committed_overheads(&self, dist_degree: u32) -> Overheads {
        self.committed_overheads_replicated(dist_degree, 0, 0)
    }

    /// Overheads of one committing transaction when the commit runs
    /// over a replica group of `2F+1` acceptors (or a coordinator
    /// replicated at `2F` backup sites). `F = 0` degenerates to
    /// [`ProtocolSpec::committed_overheads`] for every protocol, which
    /// is the Gray & Lamport theorem this crate's tests pin: Paxos
    /// Commit at `F = 0` *is* 2PC, count for count.
    ///
    /// `colocated_acceptors` counts the (remote cohort, acceptor site)
    /// co-location pairs of the concrete transaction: a remote cohort
    /// that happens to sit on an acceptor site sends that one vote for
    /// free, so exact cross-checking needs the placement.
    pub fn committed_overheads_replicated(
        &self,
        dist_degree: u32,
        f: u32,
        colocated_acceptors: u32,
    ) -> Overheads {
        assert!(dist_degree >= 1, "a transaction has at least one cohort");
        if f > 0 {
            assert!(
                self.is_replicated(),
                "{} has no replica group and ignores the replication factor",
                self.name()
            );
        }
        let t = self.base.table();
        let d = dist_degree as u64;
        let r = d - 1; // remote cohorts
        let f = f as u64;
        let exec = if t.centralized { 0 } else { 2 * r };
        if !t.voting {
            // Baselines: commit is one forced decision record.
            return Overheads {
                exec_messages: exec,
                commit_messages: 0,
                forced_writes: 1,
            };
        }
        let mut msgs = 0;
        let mut forced = 0;
        // Collecting record (PC) before the first phase.
        if t.init_record {
            forced += 1;
        }
        // Phase 1.
        match t.routing {
            // PREPARE out, votes back.
            Routing::Direct => msgs += 2 * r,
            // PREPARE rides the chain through the cohorts (r remote
            // hops; the master→local-cohort hop is free), carrying the
            // accumulated vote — no separate vote messages.
            Routing::Chain => msgs += r,
            // PREPARE out as usual, but every cohort votes to all 2F+1
            // acceptors, and each acceptor reports ACCEPTED to the
            // leader. The home cohort and the leader are co-located
            // with acceptor G(0), so those legs are free.
            Routing::Quorum => {
                let colocated = colocated_acceptors as u64;
                assert!(
                    colocated <= r * (2 * f + 1),
                    "more co-located acceptor pairs than vote legs"
                );
                msgs += r; // PREPARE out
                msgs += 2 * f; // home cohort's votes to the remote acceptors
                msgs += r * (2 * f + 1) - colocated; // remote cohorts' votes
                msgs += 2 * f; // ACCEPTED from the remote acceptors
            }
        }
        forced += d; // every cohort forces a prepare record
        if matches!(t.routing, Routing::Quorum) {
            forced += 2 * f + 1; // one vote-bundle record per acceptor
        }
        // Precommit phase (3PC): PRECOMMIT out, ACK back, both master
        // and cohorts force precommit records.
        if t.precommit {
            msgs += 2 * r;
            forced += 1 + d;
        }
        // Decision phase.
        if t.master_decision_forced.on(true) {
            forced += 1;
        }
        // Replicated coordinator: the decision record is copied to the
        // 2F backup sites (and force-written there), each copy acked,
        // before the decision is announced.
        if t.replicated_decision {
            msgs += 4 * f;
            forced += 2 * f;
        }
        msgs += r; // COMMIT out (for Chain: the backward pass)
        if t.cohort_decision_forced.on(true) {
            forced += d;
        }
        if t.cohort_ack.on(true) {
            msgs += r;
        }
        Overheads {
            exec_messages: exec,
            commit_messages: msgs,
            forced_writes: forced,
        }
    }

    /// Overheads of one committing transaction under the Read-Only
    /// optimization (§3.2). With no read-only cohorts this equals
    /// [`ProtocolSpec::committed_overheads`]; with *all* cohorts
    /// read-only the commit is one phase: PREPARE out, READ votes back,
    /// nothing forced anywhere (except PC's collecting record, which is
    /// written before the master learns the votes).
    pub fn committed_overheads_read_only(&self, scenario: ReadOnlyScenario) -> Overheads {
        let t = self.base.table();
        assert!(
            t.voting,
            "{} has no voting phase; the read-only optimization does not apply",
            self.name()
        );
        assert!(
            !matches!(t.routing, Routing::Chain),
            "the read-only optimization is not defined for chained 2PC (a read-only \
             cohort would break the chain)"
        );
        assert!(
            !self.is_replicated(),
            "the read-only optimization is not modelled for the replicated family"
        );
        assert!(
            scenario.remote_read_only < scenario.dist_degree,
            "more read-only remotes than remote cohorts"
        );
        let d = scenario.dist_degree as u64;
        let r = d - 1;
        let p = scenario.participants() as u64;
        let rp = scenario.remote_participants() as u64;

        let mut msgs = 2 * r; // PREPARE to everyone, a vote from everyone
        let mut forced = 0;
        if t.init_record {
            forced += 1;
        }
        forced += p; // only participants force prepare records
        if p > 0 {
            if t.precommit {
                msgs += 2 * rp;
                forced += 1 + p;
            }
            if t.master_decision_forced.on(true) {
                forced += 1;
            }
            msgs += rp;
            if t.cohort_decision_forced.on(true) {
                forced += p;
            }
            if t.cohort_ack.on(true) {
                msgs += rp;
            }
        }
        Overheads {
            exec_messages: 2 * r,
            commit_messages: msgs,
            forced_writes: forced,
        }
    }

    /// Overheads of one transaction *aborted in the voting phase* (the
    /// paper's "surprise abort" case, §5.7): the scenario's NO voters
    /// abort unilaterally, the YES voters reach the prepared state and
    /// are then told to abort.
    ///
    /// Baselines never abort in commit processing (they have no voting
    /// phase); asking for their abort overheads is a logic error.
    pub fn aborted_overheads(&self, scenario: AbortScenario) -> Overheads {
        let t = self.base.table();
        assert!(
            t.voting,
            "{} has no voting phase and cannot abort during commit",
            self.name()
        );
        assert!(
            !matches!(t.routing, Routing::Chain),
            "linear-2PC abort costs depend on the NO voter's chain position; \
             measure them with the simulator instead"
        );
        assert!(
            !self.is_replicated(),
            "replicated-family abort costs depend on acceptor placement; \
             measure them with the simulator instead"
        );
        assert!(
            scenario.no_voters() >= 1,
            "an abort needs at least one NO voter"
        );
        assert!(
            scenario.no_voters() <= scenario.dist_degree,
            "more NO voters than cohorts"
        );
        let d = scenario.dist_degree as u64;
        let r = d - 1;
        let no = scenario.no_voters() as u64;
        let prepared = scenario.prepared() as u64;
        let remote_prepared = scenario.remote_prepared() as u64;

        let mut msgs = 0;
        let mut forced = 0;
        if t.init_record {
            forced += 1;
        }
        // Phase 1 always completes: PREPARE out, votes (YES or NO) back.
        msgs += 2 * r;
        forced += prepared; // YES voters force prepare records
        if t.no_vote_abort_forced {
            forced += no; // NO voters force their abort records
        }
        // 3PC aborts in the voting phase never reach precommit: no extra cost.
        if t.master_decision_forced.on(false) {
            forced += 1;
        }
        // ABORT goes only to the prepared cohorts (NO voters aborted
        // unilaterally, §2.1).
        msgs += remote_prepared;
        if t.cohort_decision_forced.on(false) {
            forced += prepared;
        }
        if t.cohort_ack.on(false) {
            msgs += remote_prepared;
        }
        Overheads {
            exec_messages: 2 * r,
            commit_messages: msgs,
            forced_writes: forced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oh(spec: ProtocolSpec, d: u32) -> (u64, u64, u64) {
        let o = spec.committed_overheads(d);
        (o.exec_messages, o.forced_writes, o.commit_messages)
    }

    /// Table 3 of the paper: protocol overheads at DistDegree = 3, for
    /// committing transactions. Columns: execution messages,
    /// forced writes, commit messages.
    #[test]
    fn table_3_dist_degree_3() {
        assert_eq!(oh(ProtocolSpec::TWO_PC, 3), (4, 7, 8));
        assert_eq!(oh(ProtocolSpec::PA, 3), (4, 7, 8));
        assert_eq!(oh(ProtocolSpec::PC, 3), (4, 5, 6));
        assert_eq!(oh(ProtocolSpec::THREE_PC, 3), (4, 11, 12));
        assert_eq!(oh(ProtocolSpec::DPCC, 3), (4, 1, 0));
        assert_eq!(oh(ProtocolSpec::CENT, 3), (0, 1, 0));
    }

    /// Table 4 of the paper: protocol overheads at DistDegree = 6.
    #[test]
    fn table_4_dist_degree_6() {
        assert_eq!(oh(ProtocolSpec::TWO_PC, 6), (10, 13, 20));
        assert_eq!(oh(ProtocolSpec::PA, 6), (10, 13, 20));
        assert_eq!(oh(ProtocolSpec::PC, 6), (10, 8, 15));
        assert_eq!(oh(ProtocolSpec::THREE_PC, 6), (10, 20, 30));
        assert_eq!(oh(ProtocolSpec::DPCC, 6), (10, 1, 0));
        assert_eq!(oh(ProtocolSpec::CENT, 6), (0, 1, 0));
    }

    #[test]
    fn opt_variants_share_base_overheads() {
        for d in [2, 3, 6, 10] {
            assert_eq!(
                ProtocolSpec::OPT_2PC.committed_overheads(d),
                ProtocolSpec::TWO_PC.committed_overheads(d)
            );
            assert_eq!(
                ProtocolSpec::OPT_PA.committed_overheads(d),
                ProtocolSpec::PA.committed_overheads(d)
            );
            assert_eq!(
                ProtocolSpec::OPT_PC.committed_overheads(d),
                ProtocolSpec::PC.committed_overheads(d)
            );
            assert_eq!(
                ProtocolSpec::OPT_3PC.committed_overheads(d),
                ProtocolSpec::THREE_PC.committed_overheads(d)
            );
        }
    }

    #[test]
    fn pa_commit_equals_2pc_commit() {
        // "the PA protocol behaves identically to 2PC for committing
        //  transactions" (§2.2)
        for d in 1..=12 {
            assert_eq!(
                ProtocolSpec::PA.committed_overheads(d),
                ProtocolSpec::TWO_PC.committed_overheads(d)
            );
        }
    }

    #[test]
    fn single_site_transaction_costs_no_messages() {
        let o = ProtocolSpec::TWO_PC.committed_overheads(1);
        assert_eq!(o.exec_messages, 0);
        assert_eq!(o.commit_messages, 0);
        // Still logs: cohort prepare + commit + master decision.
        assert_eq!(o.forced_writes, 3);
    }

    #[test]
    fn total_messages_adds_up() {
        let o = ProtocolSpec::THREE_PC.committed_overheads(3);
        assert_eq!(o.total_messages(), 16);
    }

    // ----- abort side (§5.7 and the protocol descriptions of §2) -----

    fn abort_all_prepared_but_one_remote(d: u32) -> AbortScenario {
        AbortScenario {
            dist_degree: d,
            remote_no_voters: 1,
            local_no_voter: false,
        }
    }

    #[test]
    fn pa_abort_is_cheaper_than_2pc_abort() {
        let sc = abort_all_prepared_but_one_remote(3);
        let two_pc = ProtocolSpec::TWO_PC.aborted_overheads(sc);
        let pa = ProtocolSpec::PA.aborted_overheads(sc);
        // 2PC, d=3, one remote NO voter: prepared = 2.
        // forced: 2 prepare + 1 NO-voter abort + 1 master + 2 cohort aborts = 6
        // commit msgs: prepare 2 + votes 2 + abort 1 + ack 1 = 6
        assert_eq!(two_pc.forced_writes, 6);
        assert_eq!(two_pc.commit_messages, 6);
        // PA: forced: 2 prepare only; msgs: prepare 2 + votes 2 + abort 1 = 5
        assert_eq!(pa.forced_writes, 2);
        assert_eq!(pa.commit_messages, 5);
        assert!(pa.forced_writes < two_pc.forced_writes);
        assert!(pa.commit_messages < two_pc.commit_messages);
    }

    #[test]
    fn pc_abort_is_most_expensive() {
        // PC pays the collecting record *and* the full abort machinery.
        let sc = abort_all_prepared_but_one_remote(3);
        let pc = ProtocolSpec::PC.aborted_overheads(sc);
        let two_pc = ProtocolSpec::TWO_PC.aborted_overheads(sc);
        assert_eq!(pc.forced_writes, two_pc.forced_writes + 1);
        assert_eq!(pc.commit_messages, two_pc.commit_messages);
    }

    #[test]
    fn local_no_voter_saves_messages() {
        let remote = AbortScenario {
            dist_degree: 3,
            remote_no_voters: 1,
            local_no_voter: false,
        };
        let local = AbortScenario {
            dist_degree: 3,
            remote_no_voters: 0,
            local_no_voter: true,
        };
        let a = ProtocolSpec::TWO_PC.aborted_overheads(remote);
        let b = ProtocolSpec::TWO_PC.aborted_overheads(local);
        // Same forced writes, but the local NO voter's vote is free while
        // both remote prepared cohorts must be told to abort and ACK.
        assert_eq!(a.forced_writes, b.forced_writes);
        assert_eq!(b.commit_messages - a.commit_messages, 2);
    }

    #[test]
    fn all_cohorts_vote_no() {
        let sc = AbortScenario {
            dist_degree: 3,
            remote_no_voters: 2,
            local_no_voter: true,
        };
        let o = ProtocolSpec::TWO_PC.aborted_overheads(sc);
        // No prepared cohorts: no abort messages, no acks.
        // msgs = prepare 2 + votes 2; forced = 3 NO-voter aborts + 1 master.
        assert_eq!(o.commit_messages, 4);
        assert_eq!(o.forced_writes, 4);
    }

    #[test]
    fn three_pc_voting_phase_abort_equals_2pc() {
        // An abort decided in the voting phase never pays precommit costs.
        let sc = abort_all_prepared_but_one_remote(6);
        assert_eq!(
            ProtocolSpec::THREE_PC.aborted_overheads(sc),
            ProtocolSpec::TWO_PC.aborted_overheads(sc)
        );
    }

    #[test]
    fn paper_quoted_abort_rates_at_27_percent() {
        // §5.7: "in the 27 percent transaction abort probability case, 2PC
        // incurs about 8.8 forced writes ... per committed transaction,
        // whereas the corresponding values for PA are 7.7".
        // Sanity-check the inputs to that arithmetic: commit costs 7 forced
        // writes and an abort with one NO voter costs 6 (2PC) vs 2 (PA), so
        // amortized overhead per *committed* txn rises with the abort rate
        // and PA's rises more slowly.
        let commit = ProtocolSpec::TWO_PC.committed_overheads(3).forced_writes as f64;
        let sc = abort_all_prepared_but_one_remote(3);
        let abort_2pc = ProtocolSpec::TWO_PC.aborted_overheads(sc).forced_writes as f64;
        let abort_pa = ProtocolSpec::PA.aborted_overheads(sc).forced_writes as f64;
        // With p = txn abort probability, mean attempts per commit is
        // 1/(1-p); extra (aborted) attempts cost the abort overheads.
        let p: f64 = 0.27;
        let per_commit_2pc = commit + p / (1.0 - p) * abort_2pc;
        let per_commit_pa = commit + p / (1.0 - p) * abort_pa;
        assert!((per_commit_2pc - 9.2).abs() < 0.5, "got {per_commit_2pc}");
        assert!((per_commit_pa - 7.7).abs() < 0.5, "got {per_commit_pa}");
        assert!(per_commit_pa < per_commit_2pc);
    }

    // ----- linear 2PC (§2.5 extension) -----

    #[test]
    fn linear_2pc_halves_commit_messages() {
        for d in [2u32, 3, 6] {
            let lin = ProtocolSpec::LINEAR_2PC.committed_overheads(d);
            let par = ProtocolSpec::TWO_PC.committed_overheads(d);
            assert_eq!(lin.commit_messages * 2, par.commit_messages, "d={d}");
            assert_eq!(lin.forced_writes, par.forced_writes, "d={d}");
            assert_eq!(lin.exec_messages, par.exec_messages, "d={d}");
        }
        // d = 3 concretely: 4 commit messages vs 2PC's 8.
        assert_eq!(
            ProtocolSpec::LINEAR_2PC
                .committed_overheads(3)
                .commit_messages,
            4
        );
    }

    #[test]
    fn opt_linear_shares_linear_costs() {
        assert_eq!(
            ProtocolSpec::OPT_LINEAR_2PC.committed_overheads(3),
            ProtocolSpec::LINEAR_2PC.committed_overheads(3)
        );
    }

    #[test]
    #[should_panic(expected = "chain position")]
    fn linear_abort_analytics_unsupported() {
        ProtocolSpec::LINEAR_2PC.aborted_overheads(AbortScenario {
            dist_degree: 3,
            remote_no_voters: 1,
            local_no_voter: false,
        });
    }

    #[test]
    #[should_panic(expected = "break the chain")]
    fn linear_read_only_unsupported() {
        ProtocolSpec::LINEAR_2PC.committed_overheads_read_only(ReadOnlyScenario {
            dist_degree: 3,
            remote_read_only: 1,
            local_read_only: false,
        });
    }

    // ----- the replicated family (Gray & Lamport) -----

    #[test]
    fn paxos_at_f0_is_2pc_count_for_count() {
        // The degenerate-case theorem: one acceptor, co-located with
        // the master, makes Paxos Commit exactly 2PC.
        for d in 1..=12 {
            assert_eq!(
                ProtocolSpec::PAXOS.committed_overheads(d),
                ProtocolSpec::TWO_PC.committed_overheads(d),
                "d={d}"
            );
            assert_eq!(
                ProtocolSpec::REP_2PC.committed_overheads(d),
                ProtocolSpec::TWO_PC.committed_overheads(d),
                "d={d}"
            );
        }
    }

    #[test]
    fn paxos_f1_concrete_counts() {
        // d=3, F=1, no co-located acceptors: PREPARE 2, votes 2 (home
        // cohort) + 2*3 (remote cohorts), ACCEPTED 2, COMMIT 2, ACK 2
        // = 16 messages; forced = 3 prepare + 3 bundles + 3 cohort
        // decisions = 9 (no master decision record).
        let o = ProtocolSpec::PAXOS.committed_overheads_replicated(3, 1, 0);
        assert_eq!(o.exec_messages, 4);
        assert_eq!(o.commit_messages, 16);
        assert_eq!(o.forced_writes, 9);
        // Each co-located (remote cohort, acceptor) pair saves one
        // vote message and nothing else.
        let near = ProtocolSpec::PAXOS.committed_overheads_replicated(3, 1, 2);
        assert_eq!(near.commit_messages, 14);
        assert_eq!(near.forced_writes, 9);
    }

    #[test]
    fn rep2pc_pays_4f_messages_and_2f_forced_over_2pc() {
        for d in [2u32, 3, 6] {
            for f in [1u32, 2] {
                let rep = ProtocolSpec::REP_2PC.committed_overheads_replicated(d, f, 0);
                let two = ProtocolSpec::TWO_PC.committed_overheads(d);
                assert_eq!(rep.commit_messages, two.commit_messages + 4 * f as u64);
                assert_eq!(rep.forced_writes, two.forced_writes + 2 * f as u64);
                assert_eq!(rep.exec_messages, two.exec_messages);
            }
        }
    }

    #[test]
    #[should_panic(expected = "ignores the replication factor")]
    fn classic_protocols_reject_nonzero_f() {
        ProtocolSpec::TWO_PC.committed_overheads_replicated(3, 1, 0);
    }

    #[test]
    #[should_panic(expected = "acceptor placement")]
    fn replicated_abort_analytics_unsupported() {
        ProtocolSpec::PAXOS.aborted_overheads(AbortScenario {
            dist_degree: 3,
            remote_no_voters: 1,
            local_no_voter: false,
        });
    }

    #[test]
    #[should_panic(expected = "not modelled for the replicated family")]
    fn replicated_read_only_unsupported() {
        ProtocolSpec::PAXOS.committed_overheads_read_only(ReadOnlyScenario {
            dist_degree: 3,
            remote_read_only: 1,
            local_read_only: false,
        });
    }

    // ----- read-only optimization (§3.2) -----

    #[test]
    fn read_only_none_equals_plain_commit() {
        for spec in [
            ProtocolSpec::TWO_PC,
            ProtocolSpec::PA,
            ProtocolSpec::PC,
            ProtocolSpec::THREE_PC,
        ] {
            for d in [2, 3, 6] {
                let sc = ReadOnlyScenario {
                    dist_degree: d,
                    remote_read_only: 0,
                    local_read_only: false,
                };
                assert_eq!(
                    spec.committed_overheads_read_only(sc),
                    spec.committed_overheads(d),
                    "{} d={d}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn fully_read_only_transaction_is_one_phase() {
        let sc = ReadOnlyScenario {
            dist_degree: 3,
            remote_read_only: 2,
            local_read_only: true,
        };
        let o = ProtocolSpec::TWO_PC.committed_overheads_read_only(sc);
        // PREPARE out (2), READ votes back (2), nothing forced.
        assert_eq!(o.commit_messages, 4);
        assert_eq!(o.forced_writes, 0);
        // PC still pays its collecting record (written before the votes).
        let pc = ProtocolSpec::PC.committed_overheads_read_only(sc);
        assert_eq!(pc.forced_writes, 1);
        // 3PC skips the whole precommit round when nobody participates.
        let tpc = ProtocolSpec::THREE_PC.committed_overheads_read_only(sc);
        assert_eq!(tpc.commit_messages, 4);
        assert_eq!(tpc.forced_writes, 0);
    }

    #[test]
    fn partially_read_only_costs_in_between() {
        let sc = ReadOnlyScenario {
            dist_degree: 3,
            remote_read_only: 1,
            local_read_only: false,
        };
        let o = ProtocolSpec::TWO_PC.committed_overheads_read_only(sc);
        // participants = 2 (local + 1 remote), remote participants = 1.
        // msgs: prepare 2 + votes 2 + decision 1 + ack 1 = 6
        // forced: 2 prepare + 1 master + 2 cohort commit = 5
        assert_eq!(o.commit_messages, 6);
        assert_eq!(o.forced_writes, 5);
        let full = ProtocolSpec::TWO_PC.committed_overheads(3);
        assert!(o.commit_messages < full.commit_messages);
        assert!(o.forced_writes < full.forced_writes);
    }

    #[test]
    fn read_only_scenario_accessors() {
        let sc = ReadOnlyScenario {
            dist_degree: 6,
            remote_read_only: 3,
            local_read_only: true,
        };
        assert_eq!(sc.participants(), 2);
        assert_eq!(sc.remote_participants(), 2);
    }

    #[test]
    #[should_panic(expected = "does not apply")]
    fn read_only_rejects_baselines() {
        ProtocolSpec::CENT.committed_overheads_read_only(ReadOnlyScenario {
            dist_degree: 3,
            remote_read_only: 0,
            local_read_only: false,
        });
    }

    #[test]
    #[should_panic(expected = "no voting phase")]
    fn baseline_abort_overheads_panic() {
        ProtocolSpec::CENT.aborted_overheads(AbortScenario {
            dist_degree: 3,
            remote_no_voters: 1,
            local_no_voter: false,
        });
    }

    #[test]
    #[should_panic(expected = "at least one NO voter")]
    fn abort_without_no_voter_panics() {
        ProtocolSpec::TWO_PC.aborted_overheads(AbortScenario {
            dist_degree: 3,
            remote_no_voters: 0,
            local_no_voter: false,
        });
    }
}

// Exhaustive sweeps over the (small, finite) input spaces the former
// proptest suite sampled — strictly stronger coverage, no dependency.
#[cfg(test)]
mod generative_tests {
    use super::*;

    /// Structural monotonicity: overheads never decrease with the
    /// degree of distribution.
    #[test]
    fn overheads_monotone_in_dist_degree() {
        for d in 1u32..20 {
            for spec in ProtocolSpec::ALL {
                let a = spec.committed_overheads(d);
                let b = spec.committed_overheads(d + 1);
                assert!(b.exec_messages >= a.exec_messages);
                assert!(b.commit_messages >= a.commit_messages);
                assert!(b.forced_writes >= a.forced_writes);
            }
        }
    }

    /// 3PC always costs strictly more than 2PC; PC always costs no
    /// more messages/writes than 2PC (for commits).
    #[test]
    fn protocol_cost_ordering() {
        for d in 2u32..20 {
            let two = ProtocolSpec::TWO_PC.committed_overheads(d);
            let three = ProtocolSpec::THREE_PC.committed_overheads(d);
            let pc = ProtocolSpec::PC.committed_overheads(d);
            assert!(three.commit_messages > two.commit_messages);
            assert!(three.forced_writes > two.forced_writes);
            assert!(pc.commit_messages < two.commit_messages);
            assert!(pc.forced_writes < two.forced_writes);
        }
    }

    /// PA aborts are never costlier than 2PC aborts, whatever the
    /// scenario.
    #[test]
    fn pa_abort_dominates() {
        for d in 2u32..12 {
            for remote_no in 0..d {
                for local_no in [false, true] {
                    if remote_no == 0 && !local_no {
                        continue;
                    }
                    let sc = AbortScenario {
                        dist_degree: d,
                        remote_no_voters: remote_no,
                        local_no_voter: local_no,
                    };
                    let pa = ProtocolSpec::PA.aborted_overheads(sc);
                    let two = ProtocolSpec::TWO_PC.aborted_overheads(sc);
                    assert!(pa.forced_writes <= two.forced_writes);
                    assert!(pa.commit_messages <= two.commit_messages);
                }
            }
        }
    }
}
