//! # commitproto — the commit-protocol taxonomy
//!
//! Declarative descriptions of every commit protocol evaluated in the
//! SIGMOD'97 study, plus the analytic overhead model behind Tables 3
//! and 4 of the paper.
//!
//! A protocol is a [`ProtocolSpec`]: a [`BaseProtocol`] (the
//! message/logging schedule) optionally combined with the **OPT**
//! optimistic-borrowing rule, which is orthogonal to the schedule —
//! "OPT can be combined with current industry standard protocols such
//! as Presumed Commit and Presumed Abort" (§1) and with 3PC (§5.6).
//!
//! The per-step behaviour flags ([`BaseProtocol::cohort_decision_forced`]
//! etc.) are the *single source of truth*: both the simulator's state
//! machines and the analytic overhead formulas
//! ([`ProtocolSpec::committed_overheads`]) are derived from them, so a
//! disagreement between analysis and simulation is impossible by
//! construction. The unit tests pin the derived numbers to the paper's
//! Table 3 (DistDegree = 3) and Table 4 (DistDegree = 6).

pub mod overheads;
pub mod spec;

pub use overheads::{AbortScenario, Overheads, ReadOnlyScenario};
pub use spec::{BaseProtocol, ProtocolSpec, RecoveryAction, RecoveryRecord};
