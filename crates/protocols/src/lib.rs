//! # commitproto — the commit-protocol taxonomy
//!
//! Declarative descriptions of every commit protocol evaluated in the
//! SIGMOD'97 study, plus the analytic overhead model behind Tables 3
//! and 4 of the paper.
//!
//! A protocol is a [`ProtocolSpec`]: a [`BaseProtocol`] (the
//! message/logging schedule) optionally combined with the **OPT**
//! optimistic-borrowing rule, which is orthogonal to the schedule —
//! "OPT can be combined with current industry standard protocols such
//! as Presumed Commit and Presumed Abort" (§1) and with 3PC (§5.6).
//!
//! Each schedule is one row of the declarative [`SpecTable`] — voting
//! scheme, message [`Routing`], which records are forced, who
//! acknowledges what, the [`Takeover`] behaviour on coordinator crash
//! — and that row is the *single source of truth*: the simulator's
//! generic interpreter and the analytic overhead formulas
//! ([`ProtocolSpec::committed_overheads`]) both read the same columns,
//! so a disagreement between analysis and simulation is impossible by
//! construction. The unit tests pin the derived numbers to the paper's
//! Table 3 (DistDegree = 3) and Table 4 (DistDegree = 6), and the
//! engine cross-checks every simulated commit against the row it ran.

pub mod overheads;
pub mod spec;

pub use overheads::{AbortScenario, Overheads, ReadOnlyScenario};
pub use spec::{
    BaseProtocol, ByOutcome, Presumption, ProtocolSpec, RecoveryAction, RecoveryRecord, Routing,
    SpecTable, Takeover,
};
