//! Protocol identities and the declarative spec table.
//!
//! A commit protocol here is **data, not code**: every behavioural
//! difference between the protocols of §2 of the paper (and the
//! replicated-coordinator family of Gray & Lamport's "Consensus on
//! Transaction Commit") is a column of [`SpecTable`], and each
//! [`BaseProtocol`] is one row. The simulation engine is a generic
//! interpreter of the table — it never matches on the protocol
//! identity — and the analytic overhead model of Tables 3–4
//! ([`crate::overheads`]) is derived from the same row, so the two can
//! be cross-checked per transaction.

use std::fmt;
use std::str::FromStr;

/// The message/logging schedule of a commit protocol (§2 of the paper),
/// independent of the OPT lending rule. Each variant is a row of the
/// declarative [`SpecTable`]; see [`BaseProtocol::table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseProtocol {
    /// CENT baseline (§5.1): a centralized system of equivalent
    /// aggregate resources; commit is a single forced decision record,
    /// no messages at all.
    Centralized,
    /// DPCC baseline (§5.1): "distributed processing, centralized
    /// commit" — data processing is distributed, but commit is a single
    /// forced decision record at the master and zero commit messages.
    /// Artificial by construction; an upper bound for real protocols.
    Dpcc,
    /// Classical two-phase commit (§2.1).
    TwoPC,
    /// Presumed Abort (§2.2): 2PC minus abort-side acknowledgements and
    /// forced abort records ("in case of doubt, abort").
    PresumedAbort,
    /// Presumed Commit (§2.3): commit-side acknowledgements and forced
    /// cohort commit records dropped, at the price of a forced
    /// *collecting* record at the master before the protocol starts.
    PresumedCommit,
    /// Three-phase commit (§2.4): non-blocking thanks to an extra
    /// precommit phase with its own round of messages and forced
    /// writes.
    ThreePC,
    /// Linear (chained) 2PC (§2.5, the paper's ref. \[14\]): "message
    /// overheads are
    /// reduced by ordering the sites in a linear chain for
    /// communication purposes". PREPARE travels down the chain with the
    /// accumulated vote; the decision travels back up. Message count
    /// drops from `4(d−1)` to `2(d−1)` at the price of serializing the
    /// protocol — and of a much longer prepared state for early-chain
    /// cohorts, which is precisely where OPT lending helps (§3.2).
    Linear2PC,
    /// Paxos Commit (Gray & Lamport): votes go to a replica group of
    /// `2F+1` acceptors instead of the coordinator alone; each acceptor
    /// force-writes one vote-bundle record, and the leader decides once
    /// a majority (`F+1`) of acceptors have accepted. 2PC is the `F=0`
    /// degenerate case (one acceptor, co-located with the master).
    /// Non-blocking for `F ≥ 1`: a backup acceptor takes over as leader
    /// after a coordinator crash.
    PaxosCommit,
    /// 2PC over a replicated coordinator: classical 2PC whose decision
    /// record is additionally copied (and force-written) at `2F`
    /// replica sites before the decision is announced. The replication
    /// buys durability, not availability — a coordinator that crashes
    /// *before* replicating its decision still blocks the prepared
    /// cohorts until it recovers, which is exactly the baseline Paxos
    /// Commit is measured against.
    RepTwoPC,
}

/// A per-outcome flag pair: does a rule apply on commit, on abort?
/// The presumption protocols differ from 2PC precisely in which side
/// of these pairs they drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByOutcome {
    /// The rule applies when the decision is commit.
    pub commit: bool,
    /// The rule applies when the decision is abort.
    pub abort: bool,
}

impl ByOutcome {
    /// Applies on both outcomes (2PC, 3PC).
    pub const BOTH: ByOutcome = ByOutcome {
        commit: true,
        abort: true,
    };
    /// Applies on neither outcome (the baselines; linear acks).
    pub const NEITHER: ByOutcome = ByOutcome {
        commit: false,
        abort: false,
    };
    /// Commit side only (Presumed Abort drops the abort side).
    pub const COMMIT_ONLY: ByOutcome = ByOutcome {
        commit: true,
        abort: false,
    };
    /// Abort side only (Presumed Commit drops the commit side).
    pub const ABORT_ONLY: ByOutcome = ByOutcome {
        commit: false,
        abort: true,
    };

    /// Does the rule apply for this outcome?
    pub const fn on(self, commit: bool) -> bool {
        if commit {
            self.commit
        } else {
            self.abort
        }
    }
}

/// How the voting phase's messages are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routing {
    /// Star topology: the coordinator sends PREPARE to every cohort and
    /// collects the votes itself.
    Direct,
    /// Linear 2PC: PREPARE rides a chain through the cohorts carrying
    /// the accumulated vote; the decision rides the chain back (the
    /// backward pass doubles as the acknowledgement).
    Chain,
    /// Paxos Commit: every cohort sends its vote to all `2F+1`
    /// acceptors of the transaction's replica group; acceptors report
    /// ACCEPTED to the leader, which decides at a majority.
    Quorum,
}

/// What happens to prepared cohorts when the coordinator crashes at
/// the decision point (the classic blocking window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Takeover {
    /// Nobody can take over: cohorts hold their locks until the
    /// coordinator recovers (2PC, PA, PC, linear 2PC, replicated 2PC).
    Block,
    /// 3PC: the cohorts detect the failure, elect a termination
    /// coordinator among themselves, and finish from the precommitted
    /// state.
    CohortTermination,
    /// Paxos Commit: a backup acceptor becomes leader after the
    /// detection timeout and completes the protocol from the acceptor
    /// states (needs `F ≥ 1`; the `F=0` degenerate case blocks exactly
    /// like 2PC).
    LeaderFailover,
}

/// What a restarted participant presumes about an in-doubt transaction
/// for which it finds no decision record — the "presumed" in Presumed
/// Abort / Presumed Commit. Descriptive for the engine (the replay
/// rules of [`BaseProtocol::recovery_action`] are shared); drives the
/// docs and tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Presumption {
    /// No presumption: the in-doubt participant must ask (2PC, 3PC).
    Neither,
    /// Missing information means abort (Presumed Abort).
    Abort,
    /// Missing information means commit (Presumed Commit).
    Commit,
}

/// One row of the declarative protocol table: the complete
/// message/forced-write schedule of a commit protocol, as data.
///
/// | column | meaning |
/// |---|---|
/// | `voting` | runs a prepare/vote phase at all (baselines do not) |
/// | `init_record` | master forces a *collecting* record before phase 1 (PC) |
/// | `precommit` | inserts the 3PC precommit round |
/// | `routing` | how phase-1 messages travel ([`Routing`]) |
/// | `centralized` | all sites merge into one resource pool (CENT) |
/// | `replicated_decision` | decision record copied to `2F` replicas before announcement |
/// | `no_vote_abort_forced` | a NO voter forces its abort record before voting |
/// | `master_decision_forced` | master's decision record forced, per outcome |
/// | `cohort_decision_forced` | prepared cohort's decision record forced, per outcome |
/// | `cohort_ack` | prepared cohort acknowledges the decision, per outcome |
/// | `takeover` | what prepared cohorts do on coordinator crash ([`Takeover`]) |
/// | `presumption` | recovery presumption for in-doubt participants |
///
/// The engine interprets these columns generically; adding a protocol
/// means adding a row (plus, for a genuinely new mechanism like quorum
/// routing, teaching the interpreter the new column value once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecTable {
    /// Does the protocol run a voting (prepare) phase at all?
    pub voting: bool,
    /// Master forces a collecting record naming the cohorts before
    /// initiating the protocol (Presumed Commit).
    pub init_record: bool,
    /// Insert the 3PC precommit phase (one more message round-trip plus
    /// forced precommit records at master and every cohort).
    pub precommit: bool,
    /// Phase-1 message routing.
    pub routing: Routing,
    /// Merge every site's hardware into one station pool (CENT, §5.1).
    pub centralized: bool,
    /// Force the decision record at `2F` replica sites before the
    /// decision is announced (replicated-coordinator 2PC).
    pub replicated_decision: bool,
    /// A NO voter force-writes its abort record before sending the vote.
    pub no_vote_abort_forced: bool,
    /// Is the master's global decision record force-written?
    pub master_decision_forced: ByOutcome,
    /// Is a prepared cohort's decision record force-written?
    pub cohort_decision_forced: ByOutcome,
    /// Does a prepared cohort acknowledge the decision message?
    pub cohort_ack: ByOutcome,
    /// Crash behaviour at the decision point.
    pub takeover: Takeover,
    /// Recovery presumption for in-doubt participants.
    pub presumption: Presumption,
}

/// Shared shape of the no-voting baselines (CENT/DPCC): commit is one
/// forced decision record at the master, nothing else.
const BASELINE: SpecTable = SpecTable {
    voting: false,
    init_record: false,
    precommit: false,
    routing: Routing::Direct,
    centralized: false,
    replicated_decision: false,
    no_vote_abort_forced: false,
    master_decision_forced: ByOutcome::BOTH,
    cohort_decision_forced: ByOutcome::NEITHER,
    cohort_ack: ByOutcome::NEITHER,
    takeover: Takeover::Block,
    presumption: Presumption::Neither,
};

/// Classical 2PC — the reference row the variants are diffs against.
const TWO_PC_ROW: SpecTable = SpecTable {
    voting: true,
    init_record: false,
    precommit: false,
    routing: Routing::Direct,
    centralized: false,
    replicated_decision: false,
    no_vote_abort_forced: true,
    master_decision_forced: ByOutcome::BOTH,
    cohort_decision_forced: ByOutcome::BOTH,
    cohort_ack: ByOutcome::BOTH,
    takeover: Takeover::Block,
    presumption: Presumption::Neither,
};

impl BaseProtocol {
    /// All base protocols: the paper's seven in presentation order,
    /// then the replicated family.
    pub const ALL: [BaseProtocol; 9] = [
        BaseProtocol::Centralized,
        BaseProtocol::Dpcc,
        BaseProtocol::TwoPC,
        BaseProtocol::PresumedAbort,
        BaseProtocol::PresumedCommit,
        BaseProtocol::ThreePC,
        BaseProtocol::Linear2PC,
        BaseProtocol::PaxosCommit,
        BaseProtocol::RepTwoPC,
    ];

    /// The protocol's row of the declarative table.
    pub const fn table(self) -> SpecTable {
        match self {
            BaseProtocol::Centralized => SpecTable {
                centralized: true,
                ..BASELINE
            },
            BaseProtocol::Dpcc => BASELINE,
            BaseProtocol::TwoPC => TWO_PC_ROW,
            // "in case of doubt, abort": every abort-side overhead of
            // 2PC is dropped.
            BaseProtocol::PresumedAbort => SpecTable {
                no_vote_abort_forced: false,
                master_decision_forced: ByOutcome::COMMIT_ONLY,
                cohort_decision_forced: ByOutcome::COMMIT_ONLY,
                cohort_ack: ByOutcome::COMMIT_ONLY,
                presumption: Presumption::Abort,
                ..TWO_PC_ROW
            },
            // Commit-side cohort records and acks dropped, paid for
            // with the forced collecting record up front.
            BaseProtocol::PresumedCommit => SpecTable {
                init_record: true,
                cohort_decision_forced: ByOutcome::ABORT_ONLY,
                cohort_ack: ByOutcome::ABORT_ONLY,
                presumption: Presumption::Commit,
                ..TWO_PC_ROW
            },
            BaseProtocol::ThreePC => SpecTable {
                precommit: true,
                takeover: Takeover::CohortTermination,
                ..TWO_PC_ROW
            },
            // The backward pass of the chain *is* the acknowledgement.
            BaseProtocol::Linear2PC => SpecTable {
                routing: Routing::Chain,
                cohort_ack: ByOutcome::NEITHER,
                ..TWO_PC_ROW
            },
            // The 2F+1 forced acceptor bundles replace the master's
            // forced decision record.
            BaseProtocol::PaxosCommit => SpecTable {
                routing: Routing::Quorum,
                master_decision_forced: ByOutcome::NEITHER,
                takeover: Takeover::LeaderFailover,
                ..TWO_PC_ROW
            },
            BaseProtocol::RepTwoPC => SpecTable {
                replicated_decision: true,
                ..TWO_PC_ROW
            },
        }
    }

    /// Two-phase protocols are susceptible to blocking on master
    /// failure; a protocol is non-blocking iff some takeover rule lets
    /// the survivors finish without the crashed master.
    pub fn is_blocking(self) -> bool {
        let t = self.table();
        t.voting && matches!(t.takeover, Takeover::Block)
    }

    /// Number of message phases in the commit protocol proper.
    pub fn phases(self) -> u32 {
        let t = self.table();
        match (t.voting, t.precommit) {
            (false, _) => 0,
            (true, false) => 2,
            (true, true) => 3,
        }
    }

    /// Short paper name of the base protocol.
    pub fn name(self) -> &'static str {
        match self {
            BaseProtocol::Centralized => "CENT",
            BaseProtocol::Dpcc => "DPCC",
            BaseProtocol::TwoPC => "2PC",
            BaseProtocol::PresumedAbort => "PA",
            BaseProtocol::PresumedCommit => "PC",
            BaseProtocol::ThreePC => "3PC",
            BaseProtocol::Linear2PC => "L2PC",
            BaseProtocol::PaxosCommit => "PAXOS",
            BaseProtocol::RepTwoPC => "REP2PC",
        }
    }
}

impl fmt::Display for BaseProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The last record a restarting cohort finds force-written in its log
/// for an in-doubt transaction (recovery-log replay, §2.2–2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryRecord {
    /// No forced record for the transaction survived the crash.
    None,
    /// The cohort's forced prepare record.
    Prepared,
    /// The cohort's forced 3PC precommit record.
    Precommitted,
}

/// What a restarted cohort does after replaying its log, per the
/// protocol's presumption rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryAction {
    /// No record ⇒ the cohort never voted, so the master cannot have
    /// committed; the cohort aborts unilaterally (the in-case-of-doubt
    /// rule every variant shares before the prepare record is forced).
    PresumeAbort,
    /// A prepare record ⇒ the cohort is in doubt: it re-sends its YES
    /// vote and asks the master for the outcome.
    ResendVote,
    /// A 3PC precommit record ⇒ re-send the precommit ack; the
    /// termination rule commits from this state.
    ResendPreAck,
}

impl BaseProtocol {
    /// The action a restarted cohort takes for a transaction whose last
    /// forced log record is `record`. Baselines never crash-recover a
    /// cohort (they have no cohort records), so they presume abort for
    /// every record state.
    pub fn recovery_action(self, record: RecoveryRecord) -> RecoveryAction {
        let t = self.table();
        if !t.voting {
            return RecoveryAction::PresumeAbort;
        }
        match record {
            RecoveryRecord::None => RecoveryAction::PresumeAbort,
            RecoveryRecord::Prepared => RecoveryAction::ResendVote,
            // Only 3PC writes precommit records; a precommitted cohort
            // re-announces that state so termination can commit.
            RecoveryRecord::Precommitted => {
                if t.precommit {
                    RecoveryAction::ResendPreAck
                } else {
                    RecoveryAction::ResendVote
                }
            }
        }
    }
}

/// A complete protocol choice: a base schedule plus, optionally, the
/// OPT lending rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtocolSpec {
    /// The message/logging schedule.
    pub base: BaseProtocol,
    /// Whether prepared cohorts lend uncommitted data (§3).
    pub opt: bool,
}

impl ProtocolSpec {
    /// Centralized baseline.
    pub const CENT: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::Centralized,
        opt: false,
    };
    /// Distributed-processing / centralized-commit baseline.
    pub const DPCC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::Dpcc,
        opt: false,
    };
    /// Classical two-phase commit.
    pub const TWO_PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::TwoPC,
        opt: false,
    };
    /// Presumed Abort.
    pub const PA: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PresumedAbort,
        opt: false,
    };
    /// Presumed Commit.
    pub const PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PresumedCommit,
        opt: false,
    };
    /// Three-phase commit.
    pub const THREE_PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::ThreePC,
        opt: false,
    };
    /// The paper's OPT (2PC base).
    pub const OPT_2PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::TwoPC,
        opt: true,
    };
    /// OPT combined with Presumed Abort.
    pub const OPT_PA: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PresumedAbort,
        opt: true,
    };
    /// OPT combined with Presumed Commit.
    pub const OPT_PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PresumedCommit,
        opt: true,
    };
    /// Non-blocking OPT (3PC base, §5.6).
    pub const OPT_3PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::ThreePC,
        opt: true,
    };
    /// Linear (chained) 2PC (§2.5).
    pub const LINEAR_2PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::Linear2PC,
        opt: false,
    };
    /// OPT over linear 2PC — the §3.2 synergy case (the chain extends
    /// the prepared state, so there is more to lend).
    pub const OPT_LINEAR_2PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::Linear2PC,
        opt: true,
    };
    /// Paxos Commit over a replica group of `2F+1` acceptors.
    pub const PAXOS: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PaxosCommit,
        opt: false,
    };
    /// 2PC with the decision record replicated to `2F` backup sites.
    pub const REP_2PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::RepTwoPC,
        opt: false,
    };

    /// Every spec the paper evaluates, the linear-2PC extension, and
    /// the replicated family.
    pub const ALL: [ProtocolSpec; 14] = [
        ProtocolSpec::CENT,
        ProtocolSpec::DPCC,
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_PA,
        ProtocolSpec::OPT_PC,
        ProtocolSpec::OPT_3PC,
        ProtocolSpec::LINEAR_2PC,
        ProtocolSpec::OPT_LINEAR_2PC,
        ProtocolSpec::PAXOS,
        ProtocolSpec::REP_2PC,
    ];

    /// The accepted spellings of every spec, in [`ProtocolSpec::ALL`]
    /// order; the first alias of each entry is the canonical name.
    /// This single vocabulary drives [`ProtocolSpec::from_str`], its
    /// error text, and the CLI usage screen (the same pattern as
    /// `FailureConfig::CLI_KEYS`).
    pub const CLI_NAMES: [(ProtocolSpec, &'static [&'static str]); 14] = [
        (ProtocolSpec::CENT, &["CENT", "CENTRALIZED"]),
        (ProtocolSpec::DPCC, &["DPCC"]),
        (ProtocolSpec::TWO_PC, &["2PC"]),
        (ProtocolSpec::PA, &["PA", "PRESUMED-ABORT"]),
        (ProtocolSpec::PC, &["PC", "PRESUMED-COMMIT"]),
        (ProtocolSpec::THREE_PC, &["3PC"]),
        (ProtocolSpec::OPT_2PC, &["OPT", "OPT-2PC"]),
        (ProtocolSpec::OPT_PA, &["OPT-PA"]),
        (ProtocolSpec::OPT_PC, &["OPT-PC"]),
        (ProtocolSpec::OPT_3PC, &["OPT-3PC"]),
        (ProtocolSpec::LINEAR_2PC, &["L2PC", "LINEAR-2PC"]),
        (
            ProtocolSpec::OPT_LINEAR_2PC,
            &["OPT-L2PC", "OPT-LINEAR-2PC"],
        ),
        (ProtocolSpec::PAXOS, &["PAXOS", "PAXOS-COMMIT"]),
        (ProtocolSpec::REP_2PC, &["REP2PC", "REP-2PC"]),
    ];

    /// The canonical names, in [`ProtocolSpec::ALL`] order — the list
    /// printed by the CLI usage screen and by parse errors.
    pub fn valid_names() -> impl Iterator<Item = &'static str> {
        Self::CLI_NAMES.iter().map(|(_, aliases)| aliases[0])
    }

    /// Paper name ("OPT" alone denotes OPT on a 2PC base).
    pub fn name(self) -> &'static str {
        if !self.opt {
            return self.base.name();
        }
        match self.base {
            BaseProtocol::TwoPC => "OPT",
            BaseProtocol::PresumedAbort => "OPT-PA",
            BaseProtocol::PresumedCommit => "OPT-PC",
            BaseProtocol::ThreePC => "OPT-3PC",
            BaseProtocol::Linear2PC => "OPT-L2PC",
            // OPT over the baselines is meaningless (no prepared
            // state), and the replicated family does not model lending;
            // name misuse explicitly so it is visible.
            BaseProtocol::Centralized => "OPT-CENT(invalid)",
            BaseProtocol::Dpcc => "OPT-DPCC(invalid)",
            BaseProtocol::PaxosCommit => "OPT-PAXOS(invalid)",
            BaseProtocol::RepTwoPC => "OPT-REP2PC(invalid)",
        }
    }

    /// Is this spec meaningful? OPT needs a prepared state to lend
    /// from, so it cannot be combined with the baselines; the
    /// replicated family does not model lending.
    pub fn is_valid(self) -> bool {
        !self.opt || (self.base.table().voting && !self.is_replicated())
    }

    /// Non-blocking protocols survive master failure without stalling
    /// prepared cohorts. (Paxos Commit counts as non-blocking: its
    /// failover needs `F ≥ 1`, and `F = 0` is the 2PC degenerate case.)
    pub fn is_non_blocking(self) -> bool {
        !self.base.is_blocking()
    }

    /// Does this spec involve a replica group (acceptors or a
    /// replicated coordinator)? These are the specs that honour a
    /// nonzero replication factor `F`.
    pub fn is_replicated(self) -> bool {
        let t = self.base.table();
        matches!(t.routing, Routing::Quorum) || t.replicated_decision
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by [`ProtocolSpec::from_str`] for unknown names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError(pub String);

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown protocol name: {:?} (valid: ", self.0)?;
        for (i, name) in ProtocolSpec::valid_names().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(name)?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for ProtocolSpec {
    type Err = ParseProtocolError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.trim().to_ascii_uppercase();
        for (spec, aliases) in ProtocolSpec::CLI_NAMES {
            if aliases.iter().any(|&a| a == up) {
                return Ok(spec);
            }
        }
        Err(ParseProtocolError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parsing() {
        for spec in ProtocolSpec::ALL {
            let parsed: ProtocolSpec = spec.name().parse().unwrap();
            assert_eq!(parsed, spec, "{}", spec.name());
        }
    }

    #[test]
    fn cli_vocabulary_is_in_all_order_and_canonical() {
        assert_eq!(ProtocolSpec::CLI_NAMES.len(), ProtocolSpec::ALL.len());
        for (i, (spec, aliases)) in ProtocolSpec::CLI_NAMES.iter().enumerate() {
            assert_eq!(*spec, ProtocolSpec::ALL[i], "vocabulary order");
            assert_eq!(aliases[0], spec.name(), "first alias is canonical");
            for alias in *aliases {
                assert_eq!(alias.parse::<ProtocolSpec>().unwrap(), *spec, "{alias}");
            }
        }
    }

    #[test]
    fn parsing_is_case_insensitive() {
        assert_eq!(
            "opt-3pc".parse::<ProtocolSpec>().unwrap(),
            ProtocolSpec::OPT_3PC
        );
        assert_eq!(
            " 2pc ".parse::<ProtocolSpec>().unwrap(),
            ProtocolSpec::TWO_PC
        );
        assert_eq!(
            "paxos-commit".parse::<ProtocolSpec>().unwrap(),
            ProtocolSpec::PAXOS
        );
    }

    #[test]
    fn unknown_name_errors_list_the_vocabulary() {
        let err = "4PC".parse::<ProtocolSpec>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("4PC"));
        // The error names every valid spelling's canonical form.
        for name in ProtocolSpec::valid_names() {
            assert!(msg.contains(name), "error text misses {name}");
        }
    }

    #[test]
    fn blocking_classification_matches_paper() {
        // "two-phase commit protocols are susceptible to blocking whereas
        //  three-phase commit protocols are non-blocking"
        assert!(!ProtocolSpec::TWO_PC.is_non_blocking());
        assert!(!ProtocolSpec::PA.is_non_blocking());
        assert!(!ProtocolSpec::PC.is_non_blocking());
        assert!(ProtocolSpec::THREE_PC.is_non_blocking());
        assert!(ProtocolSpec::OPT_3PC.is_non_blocking());
        assert!(!ProtocolSpec::OPT_2PC.is_non_blocking());
        // The replicated family: consensus fails over, a replicated
        // log alone does not.
        assert!(ProtocolSpec::PAXOS.is_non_blocking());
        assert!(!ProtocolSpec::REP_2PC.is_non_blocking());
    }

    #[test]
    fn opt_requires_a_voting_phase() {
        assert!(ProtocolSpec::OPT_2PC.is_valid());
        assert!(ProtocolSpec::OPT_3PC.is_valid());
        for base in [
            BaseProtocol::Centralized,
            BaseProtocol::Dpcc,
            BaseProtocol::PaxosCommit,
            BaseProtocol::RepTwoPC,
        ] {
            assert!(!ProtocolSpec { base, opt: true }.is_valid(), "{base}");
        }
        for spec in ProtocolSpec::ALL {
            assert!(spec.is_valid());
        }
    }

    #[test]
    fn replicated_family_classification() {
        for spec in ProtocolSpec::ALL {
            let expect = matches!(
                spec.base,
                BaseProtocol::PaxosCommit | BaseProtocol::RepTwoPC
            );
            assert_eq!(spec.is_replicated(), expect, "{}", spec.name());
        }
    }

    #[test]
    fn presumed_abort_row() {
        let pa = BaseProtocol::PresumedAbort.table();
        // PA behaves identically to 2PC for committing transactions...
        assert!(pa.master_decision_forced.on(true));
        assert!(pa.cohort_decision_forced.on(true));
        assert!(pa.cohort_ack.on(true));
        // ...but drops all abort-side overheads.
        assert!(!pa.master_decision_forced.on(false));
        assert!(!pa.cohort_decision_forced.on(false));
        assert!(!pa.cohort_ack.on(false));
        assert!(!pa.no_vote_abort_forced);
        assert_eq!(pa.presumption, Presumption::Abort);
    }

    #[test]
    fn presumed_commit_row() {
        let pc = BaseProtocol::PresumedCommit.table();
        assert!(pc.init_record);
        assert!(pc.master_decision_forced.on(true));
        // cohorts neither force the commit record nor ACK commit...
        assert!(!pc.cohort_decision_forced.on(true));
        assert!(!pc.cohort_ack.on(true));
        // ...but pay full price on abort.
        assert!(pc.cohort_decision_forced.on(false));
        assert!(pc.cohort_ack.on(false));
        assert!(pc.no_vote_abort_forced);
        assert_eq!(pc.presumption, Presumption::Commit);
    }

    #[test]
    fn three_pc_has_extra_phase() {
        assert!(BaseProtocol::ThreePC.table().precommit);
        assert_eq!(
            BaseProtocol::ThreePC.table().takeover,
            Takeover::CohortTermination
        );
        assert_eq!(BaseProtocol::ThreePC.phases(), 3);
        assert_eq!(BaseProtocol::TwoPC.phases(), 2);
        assert_eq!(BaseProtocol::Centralized.phases(), 0);
        assert_eq!(BaseProtocol::PaxosCommit.phases(), 2);
    }

    #[test]
    fn baselines_have_no_voting() {
        for b in [BaseProtocol::Centralized, BaseProtocol::Dpcc] {
            let t = b.table();
            assert!(!t.voting);
            assert_eq!(t.cohort_decision_forced, ByOutcome::NEITHER);
            assert_eq!(t.cohort_ack, ByOutcome::NEITHER);
            assert!(t.master_decision_forced.on(true));
            assert!(t.master_decision_forced.on(false));
        }
        assert!(BaseProtocol::Centralized.table().centralized);
        assert!(!BaseProtocol::Dpcc.table().centralized);
    }

    #[test]
    fn linear_row_chains_without_acks() {
        let lin = BaseProtocol::Linear2PC.table();
        assert_eq!(lin.routing, Routing::Chain);
        // The backward pass of the chain *is* the acknowledgement.
        assert_eq!(lin.cohort_ack, ByOutcome::NEITHER);
        assert_eq!(lin.cohort_decision_forced, ByOutcome::BOTH);
        assert_eq!(lin.takeover, Takeover::Block);
    }

    #[test]
    fn paxos_row_replaces_the_master_record_with_acceptor_bundles() {
        let px = BaseProtocol::PaxosCommit.table();
        assert_eq!(px.routing, Routing::Quorum);
        assert_eq!(px.master_decision_forced, ByOutcome::NEITHER);
        assert_eq!(px.cohort_decision_forced, ByOutcome::BOTH);
        assert_eq!(px.cohort_ack, ByOutcome::BOTH);
        assert_eq!(px.takeover, Takeover::LeaderFailover);
        assert!(!px.replicated_decision);
    }

    #[test]
    fn rep2pc_row_is_2pc_plus_replica_copies() {
        let rep = BaseProtocol::RepTwoPC.table();
        let two = BaseProtocol::TwoPC.table();
        assert!(rep.replicated_decision);
        assert_eq!(
            SpecTable {
                replicated_decision: false,
                ..rep
            },
            two
        );
    }

    #[test]
    fn by_outcome_truth_table() {
        assert!(ByOutcome::BOTH.on(true) && ByOutcome::BOTH.on(false));
        assert!(!ByOutcome::NEITHER.on(true) && !ByOutcome::NEITHER.on(false));
        assert!(ByOutcome::COMMIT_ONLY.on(true) && !ByOutcome::COMMIT_ONLY.on(false));
        assert!(!ByOutcome::ABORT_ONLY.on(true) && ByOutcome::ABORT_ONLY.on(false));
    }

    #[test]
    fn recovery_replay_follows_presumption_rules() {
        use RecoveryAction::*;
        use RecoveryRecord::*;
        // No forced record: every protocol presumes abort.
        for b in BaseProtocol::ALL {
            assert_eq!(b.recovery_action(None), PresumeAbort, "{b}");
        }
        // A prepare record leaves a voting cohort in doubt.
        for b in BaseProtocol::ALL {
            if b.table().voting {
                assert_eq!(b.recovery_action(Prepared), ResendVote, "{b}");
            }
        }
        // Only 3PC recovers into the precommitted state.
        assert_eq!(
            BaseProtocol::ThreePC.recovery_action(Precommitted),
            ResendPreAck
        );
        assert_eq!(
            BaseProtocol::TwoPC.recovery_action(Precommitted),
            ResendVote
        );
        // Baselines have no cohort log records at all.
        assert_eq!(
            BaseProtocol::Centralized.recovery_action(Prepared),
            PresumeAbort
        );
        assert_eq!(
            BaseProtocol::Dpcc.recovery_action(Precommitted),
            PresumeAbort
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolSpec::OPT_2PC.to_string(), "OPT");
        assert_eq!(ProtocolSpec::TWO_PC.to_string(), "2PC");
        assert_eq!(ProtocolSpec::CENT.to_string(), "CENT");
        assert_eq!(BaseProtocol::PresumedCommit.to_string(), "PC");
        assert_eq!(ProtocolSpec::PAXOS.to_string(), "PAXOS");
        assert_eq!(ProtocolSpec::REP_2PC.to_string(), "REP2PC");
    }
}
