//! Protocol identities and per-step behaviour flags.

use std::fmt;
use std::str::FromStr;

/// The message/logging schedule of a commit protocol (§2 of the paper),
/// independent of the OPT lending rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseProtocol {
    /// CENT baseline (§5.1): a centralized system of equivalent
    /// aggregate resources; commit is a single forced decision record,
    /// no messages at all.
    Centralized,
    /// DPCC baseline (§5.1): "distributed processing, centralized
    /// commit" — data processing is distributed, but commit is a single
    /// forced decision record at the master and zero commit messages.
    /// Artificial by construction; an upper bound for real protocols.
    Dpcc,
    /// Classical two-phase commit (§2.1).
    TwoPC,
    /// Presumed Abort (§2.2): 2PC minus abort-side acknowledgements and
    /// forced abort records ("in case of doubt, abort").
    PresumedAbort,
    /// Presumed Commit (§2.3): commit-side acknowledgements and forced
    /// cohort commit records dropped, at the price of a forced
    /// *collecting* record at the master before the protocol starts.
    PresumedCommit,
    /// Three-phase commit (§2.4): non-blocking thanks to an extra
    /// precommit phase with its own round of messages and forced
    /// writes.
    ThreePC,
    /// Linear (chained) 2PC (§2.5, the paper's ref. \[14\]): "message
    /// overheads are
    /// reduced by ordering the sites in a linear chain for
    /// communication purposes". PREPARE travels down the chain with the
    /// accumulated vote; the decision travels back up. Message count
    /// drops from `4(d−1)` to `2(d−1)` at the price of serializing the
    /// protocol — and of a much longer prepared state for early-chain
    /// cohorts, which is precisely where OPT lending helps (§3.2).
    Linear2PC,
}

impl BaseProtocol {
    /// All base protocols, in the paper's presentation order.
    pub const ALL: [BaseProtocol; 7] = [
        BaseProtocol::Centralized,
        BaseProtocol::Dpcc,
        BaseProtocol::TwoPC,
        BaseProtocol::PresumedAbort,
        BaseProtocol::PresumedCommit,
        BaseProtocol::ThreePC,
        BaseProtocol::Linear2PC,
    ];

    /// Does the protocol run a voting (prepare) phase at all?
    /// The two baselines do not — their commit is a single log write.
    pub fn has_voting_phase(self) -> bool {
        !matches!(self, BaseProtocol::Centralized | BaseProtocol::Dpcc)
    }

    /// Does the master force-write a *collecting* record (naming the
    /// cohorts) before initiating the protocol? Only Presumed Commit.
    pub fn collecting_record(self) -> bool {
        self == BaseProtocol::PresumedCommit
    }

    /// Does the protocol insert the 3PC precommit phase (one more
    /// message round-trip plus forced precommit records at master and
    /// every cohort)?
    pub fn precommit_phase(self) -> bool {
        self == BaseProtocol::ThreePC
    }

    /// Is the master's global decision record force-written?
    ///
    /// Presumed Abort skips the forced write on the abort side (the
    /// "in case of doubt, abort" rule makes it recoverable for free).
    pub fn master_decision_forced(self, commit: bool) -> bool {
        match self {
            BaseProtocol::PresumedAbort => commit,
            _ => true,
        }
    }

    /// Is a *prepared* cohort's decision record force-written?
    ///
    /// * Presumed Abort: commit yes, abort no.
    /// * Presumed Commit: commit no, abort yes.
    /// * 2PC / 3PC: both forced.
    /// * Baselines: no cohort records at all.
    pub fn cohort_decision_forced(self, commit: bool) -> bool {
        match self {
            BaseProtocol::Centralized | BaseProtocol::Dpcc => false,
            BaseProtocol::PresumedAbort => commit,
            BaseProtocol::PresumedCommit => !commit,
            BaseProtocol::TwoPC | BaseProtocol::ThreePC | BaseProtocol::Linear2PC => true,
        }
    }

    /// Does a prepared cohort acknowledge the decision message?
    ///
    /// * Presumed Abort drops abort ACKs; Presumed Commit drops commit
    ///   ACKs; 2PC / 3PC require both.
    pub fn cohort_ack(self, commit: bool) -> bool {
        match self {
            BaseProtocol::Centralized | BaseProtocol::Dpcc => false,
            BaseProtocol::PresumedAbort => commit,
            BaseProtocol::PresumedCommit => !commit,
            BaseProtocol::TwoPC | BaseProtocol::ThreePC => true,
            // The backward pass of the chain *is* the acknowledgement.
            BaseProtocol::Linear2PC => false,
        }
    }

    /// Does a cohort that votes NO force-write its abort record before
    /// sending the vote? (Presumed Abort does not.)
    pub fn no_vote_abort_forced(self) -> bool {
        match self {
            BaseProtocol::PresumedAbort => false,
            _ => self.has_voting_phase(),
        }
    }

    /// Two-phase protocols are susceptible to blocking on master
    /// failure; only 3PC (and the baselines, trivially) are not.
    pub fn is_blocking(self) -> bool {
        matches!(
            self,
            BaseProtocol::TwoPC
                | BaseProtocol::PresumedAbort
                | BaseProtocol::PresumedCommit
                | BaseProtocol::Linear2PC
        )
    }

    /// Number of message phases in the commit protocol proper.
    pub fn phases(self) -> u32 {
        match self {
            BaseProtocol::Centralized | BaseProtocol::Dpcc => 0,
            BaseProtocol::TwoPC
            | BaseProtocol::PresumedAbort
            | BaseProtocol::PresumedCommit
            | BaseProtocol::Linear2PC => 2,
            BaseProtocol::ThreePC => 3,
        }
    }

    /// Short paper name of the base protocol.
    pub fn name(self) -> &'static str {
        match self {
            BaseProtocol::Centralized => "CENT",
            BaseProtocol::Dpcc => "DPCC",
            BaseProtocol::TwoPC => "2PC",
            BaseProtocol::PresumedAbort => "PA",
            BaseProtocol::PresumedCommit => "PC",
            BaseProtocol::ThreePC => "3PC",
            BaseProtocol::Linear2PC => "L2PC",
        }
    }
}

impl fmt::Display for BaseProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The last record a restarting cohort finds force-written in its log
/// for an in-doubt transaction (recovery-log replay, §2.2–2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryRecord {
    /// No forced record for the transaction survived the crash.
    None,
    /// The cohort's forced prepare record.
    Prepared,
    /// The cohort's forced 3PC precommit record.
    Precommitted,
}

/// What a restarted cohort does after replaying its log, per the
/// protocol's presumption rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryAction {
    /// No record ⇒ the cohort never voted, so the master cannot have
    /// committed; the cohort aborts unilaterally (the in-case-of-doubt
    /// rule every variant shares before the prepare record is forced).
    PresumeAbort,
    /// A prepare record ⇒ the cohort is in doubt: it re-sends its YES
    /// vote and asks the master for the outcome.
    ResendVote,
    /// A 3PC precommit record ⇒ re-send the precommit ack; the
    /// termination rule commits from this state.
    ResendPreAck,
}

impl BaseProtocol {
    /// The action a restarted cohort takes for a transaction whose last
    /// forced log record is `record`. Baselines never crash-recover a
    /// cohort (they have no cohort records), so they presume abort for
    /// every record state.
    pub fn recovery_action(self, record: RecoveryRecord) -> RecoveryAction {
        if !self.has_voting_phase() {
            return RecoveryAction::PresumeAbort;
        }
        match record {
            RecoveryRecord::None => RecoveryAction::PresumeAbort,
            RecoveryRecord::Prepared => RecoveryAction::ResendVote,
            // Only 3PC writes precommit records; a precommitted cohort
            // re-announces that state so termination can commit.
            RecoveryRecord::Precommitted => {
                if self.precommit_phase() {
                    RecoveryAction::ResendPreAck
                } else {
                    RecoveryAction::ResendVote
                }
            }
        }
    }
}

/// A complete protocol choice: a base schedule plus, optionally, the
/// OPT lending rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtocolSpec {
    /// The message/logging schedule.
    pub base: BaseProtocol,
    /// Whether prepared cohorts lend uncommitted data (§3).
    pub opt: bool,
}

impl ProtocolSpec {
    /// Centralized baseline.
    pub const CENT: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::Centralized,
        opt: false,
    };
    /// Distributed-processing / centralized-commit baseline.
    pub const DPCC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::Dpcc,
        opt: false,
    };
    /// Classical two-phase commit.
    pub const TWO_PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::TwoPC,
        opt: false,
    };
    /// Presumed Abort.
    pub const PA: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PresumedAbort,
        opt: false,
    };
    /// Presumed Commit.
    pub const PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PresumedCommit,
        opt: false,
    };
    /// Three-phase commit.
    pub const THREE_PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::ThreePC,
        opt: false,
    };
    /// The paper's OPT (2PC base).
    pub const OPT_2PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::TwoPC,
        opt: true,
    };
    /// OPT combined with Presumed Abort.
    pub const OPT_PA: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PresumedAbort,
        opt: true,
    };
    /// OPT combined with Presumed Commit.
    pub const OPT_PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::PresumedCommit,
        opt: true,
    };
    /// Non-blocking OPT (3PC base, §5.6).
    pub const OPT_3PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::ThreePC,
        opt: true,
    };
    /// Linear (chained) 2PC (§2.5).
    pub const LINEAR_2PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::Linear2PC,
        opt: false,
    };
    /// OPT over linear 2PC — the §3.2 synergy case (the chain extends
    /// the prepared state, so there is more to lend).
    pub const OPT_LINEAR_2PC: ProtocolSpec = ProtocolSpec {
        base: BaseProtocol::Linear2PC,
        opt: true,
    };

    /// Every spec the paper evaluates, plus the linear-2PC extension.
    pub const ALL: [ProtocolSpec; 12] = [
        ProtocolSpec::CENT,
        ProtocolSpec::DPCC,
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_PA,
        ProtocolSpec::OPT_PC,
        ProtocolSpec::OPT_3PC,
        ProtocolSpec::LINEAR_2PC,
        ProtocolSpec::OPT_LINEAR_2PC,
    ];

    /// Paper name ("OPT" alone denotes OPT on a 2PC base).
    pub fn name(self) -> &'static str {
        if !self.opt {
            return self.base.name();
        }
        match self.base {
            BaseProtocol::TwoPC => "OPT",
            BaseProtocol::PresumedAbort => "OPT-PA",
            BaseProtocol::PresumedCommit => "OPT-PC",
            BaseProtocol::ThreePC => "OPT-3PC",
            BaseProtocol::Linear2PC => "OPT-L2PC",
            // OPT over the baselines is meaningless (no prepared state);
            // name it explicitly so misuse is visible.
            BaseProtocol::Centralized => "OPT-CENT(invalid)",
            BaseProtocol::Dpcc => "OPT-DPCC(invalid)",
        }
    }

    /// Is this spec meaningful? OPT needs a prepared state to lend
    /// from, so it cannot be combined with the baselines.
    pub fn is_valid(self) -> bool {
        !self.opt || self.base.has_voting_phase()
    }

    /// Non-blocking protocols survive master failure without stalling
    /// prepared cohorts.
    pub fn is_non_blocking(self) -> bool {
        !self.base.is_blocking()
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by [`ProtocolSpec::from_str`] for unknown names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError(pub String);

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown protocol name: {:?}", self.0)
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for ProtocolSpec {
    type Err = ParseProtocolError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.trim().to_ascii_uppercase();
        let spec = match up.as_str() {
            "CENT" | "CENTRALIZED" => ProtocolSpec::CENT,
            "DPCC" => ProtocolSpec::DPCC,
            "2PC" => ProtocolSpec::TWO_PC,
            "PA" | "PRESUMED-ABORT" => ProtocolSpec::PA,
            "PC" | "PRESUMED-COMMIT" => ProtocolSpec::PC,
            "3PC" => ProtocolSpec::THREE_PC,
            "OPT" | "OPT-2PC" => ProtocolSpec::OPT_2PC,
            "OPT-PA" => ProtocolSpec::OPT_PA,
            "OPT-PC" => ProtocolSpec::OPT_PC,
            "OPT-3PC" => ProtocolSpec::OPT_3PC,
            "L2PC" | "LINEAR-2PC" => ProtocolSpec::LINEAR_2PC,
            "OPT-L2PC" | "OPT-LINEAR-2PC" => ProtocolSpec::OPT_LINEAR_2PC,
            _ => return Err(ParseProtocolError(s.to_string())),
        };
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parsing() {
        for spec in ProtocolSpec::ALL {
            let parsed: ProtocolSpec = spec.name().parse().unwrap();
            assert_eq!(parsed, spec, "{}", spec.name());
        }
    }

    #[test]
    fn parsing_is_case_insensitive() {
        assert_eq!(
            "opt-3pc".parse::<ProtocolSpec>().unwrap(),
            ProtocolSpec::OPT_3PC
        );
        assert_eq!(
            " 2pc ".parse::<ProtocolSpec>().unwrap(),
            ProtocolSpec::TWO_PC
        );
    }

    #[test]
    fn unknown_name_errors() {
        let err = "4PC".parse::<ProtocolSpec>().unwrap_err();
        assert!(err.to_string().contains("4PC"));
    }

    #[test]
    fn blocking_classification_matches_paper() {
        // "two-phase commit protocols are susceptible to blocking whereas
        //  three-phase commit protocols are non-blocking"
        assert!(!ProtocolSpec::TWO_PC.is_non_blocking());
        assert!(!ProtocolSpec::PA.is_non_blocking());
        assert!(!ProtocolSpec::PC.is_non_blocking());
        assert!(ProtocolSpec::THREE_PC.is_non_blocking());
        assert!(ProtocolSpec::OPT_3PC.is_non_blocking());
        assert!(!ProtocolSpec::OPT_2PC.is_non_blocking());
    }

    #[test]
    fn opt_requires_a_voting_phase() {
        assert!(ProtocolSpec::OPT_2PC.is_valid());
        assert!(ProtocolSpec::OPT_3PC.is_valid());
        assert!(!ProtocolSpec {
            base: BaseProtocol::Centralized,
            opt: true
        }
        .is_valid());
        assert!(!ProtocolSpec {
            base: BaseProtocol::Dpcc,
            opt: true
        }
        .is_valid());
        for spec in ProtocolSpec::ALL {
            assert!(spec.is_valid());
        }
    }

    #[test]
    fn presumed_abort_flags() {
        let pa = BaseProtocol::PresumedAbort;
        // PA behaves identically to 2PC for committing transactions...
        assert!(pa.master_decision_forced(true));
        assert!(pa.cohort_decision_forced(true));
        assert!(pa.cohort_ack(true));
        // ...but drops all abort-side overheads.
        assert!(!pa.master_decision_forced(false));
        assert!(!pa.cohort_decision_forced(false));
        assert!(!pa.cohort_ack(false));
        assert!(!pa.no_vote_abort_forced());
    }

    #[test]
    fn presumed_commit_flags() {
        let pc = BaseProtocol::PresumedCommit;
        assert!(pc.collecting_record());
        assert!(pc.master_decision_forced(true));
        // cohorts neither force the commit record nor ACK commit...
        assert!(!pc.cohort_decision_forced(true));
        assert!(!pc.cohort_ack(true));
        // ...but pay full price on abort.
        assert!(pc.cohort_decision_forced(false));
        assert!(pc.cohort_ack(false));
        assert!(pc.no_vote_abort_forced());
    }

    #[test]
    fn three_pc_has_extra_phase() {
        assert!(BaseProtocol::ThreePC.precommit_phase());
        assert_eq!(BaseProtocol::ThreePC.phases(), 3);
        assert_eq!(BaseProtocol::TwoPC.phases(), 2);
        assert_eq!(BaseProtocol::Centralized.phases(), 0);
    }

    #[test]
    fn baselines_have_no_voting() {
        assert!(!BaseProtocol::Centralized.has_voting_phase());
        assert!(!BaseProtocol::Dpcc.has_voting_phase());
        assert!(!BaseProtocol::Dpcc.cohort_decision_forced(true));
        assert!(!BaseProtocol::Centralized.cohort_ack(false));
        for b in [BaseProtocol::Centralized, BaseProtocol::Dpcc] {
            assert!(b.master_decision_forced(true));
            assert!(b.master_decision_forced(false));
        }
    }

    #[test]
    fn recovery_replay_follows_presumption_rules() {
        use RecoveryAction::*;
        use RecoveryRecord::*;
        // No forced record: every protocol presumes abort.
        for b in BaseProtocol::ALL {
            assert_eq!(b.recovery_action(None), PresumeAbort, "{b}");
        }
        // A prepare record leaves a voting cohort in doubt.
        for b in [
            BaseProtocol::TwoPC,
            BaseProtocol::PresumedAbort,
            BaseProtocol::PresumedCommit,
            BaseProtocol::ThreePC,
            BaseProtocol::Linear2PC,
        ] {
            assert_eq!(b.recovery_action(Prepared), ResendVote, "{b}");
        }
        // Only 3PC recovers into the precommitted state.
        assert_eq!(
            BaseProtocol::ThreePC.recovery_action(Precommitted),
            ResendPreAck
        );
        assert_eq!(
            BaseProtocol::TwoPC.recovery_action(Precommitted),
            ResendVote
        );
        // Baselines have no cohort log records at all.
        assert_eq!(
            BaseProtocol::Centralized.recovery_action(Prepared),
            PresumeAbort
        );
        assert_eq!(
            BaseProtocol::Dpcc.recovery_action(Precommitted),
            PresumeAbort
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolSpec::OPT_2PC.to_string(), "OPT");
        assert_eq!(ProtocolSpec::TWO_PC.to_string(), "2PC");
        assert_eq!(ProtocolSpec::CENT.to_string(), "CENT");
        assert_eq!(BaseProtocol::PresumedCommit.to_string(), "PC");
    }
}
