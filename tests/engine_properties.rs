//! Generative tests over the whole engine: random (valid)
//! configurations and protocols must always produce runs that satisfy
//! the global invariants — completion, conservation, metric sanity,
//! and agreement with the analytic overhead model when conflict-free.
//!
//! Formerly a proptest suite; rewritten as deterministic seeded loops
//! so the test baseline needs no external crates.

use distcommit::db::config::{ResourceMode, SystemConfig, TransType};
use distcommit::db::engine::Simulation;
use distcommit::proto::ProtocolSpec;
use distcommit::sim::SimRng;
use simkernel::SimDuration;

fn random_protocol(r: &mut SimRng) -> ProtocolSpec {
    *r.pick(&ProtocolSpec::ALL)
}

fn random_config(r: &mut SimRng) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    let sites = r.uniform_usize(2, 8);
    cfg.num_sites = sites;
    cfg.dist_degree = (r.uniform_u64(1, 4) as u32).min(sites as u32);
    cfg.cohort_size = r.uniform_u64(2, 8) as u32;
    cfg.update_prob = r.uniform_u64(0, 10) as f64 / 10.0;
    cfg.num_cpus = r.uniform_u64(1, 2) as u32;
    cfg.num_data_disks = r.uniform_u64(1, 3) as u32;
    cfg.num_log_disks = r.uniform_u64(1, 2) as u32;
    cfg.mpl = r.uniform_u64(1, 6) as u32;
    cfg.trans_type = if r.chance(0.5) {
        TransType::Sequential
    } else {
        TransType::Parallel
    };
    cfg.resources = if r.chance(0.5) {
        ResourceMode::Infinite
    } else {
        ResourceMode::Finite
    };
    cfg.cohort_abort_prob = r.uniform_u64(0, 1) as f64 * 0.05;
    // keep the hot path fast and the page pool valid
    let pps = r.uniform_u64(50, 600).max(cfg.max_cohort_pages() * 2);
    cfg.db_size = pps * sites as u64;
    cfg.page_cpu = SimDuration::from_millis(5);
    cfg.run.warmup_transactions = 20;
    cfg.run.measured_transactions = 150;
    cfg
}

/// Any valid configuration × protocol × seed runs to completion
/// with sane metrics.
#[test]
fn random_configs_run_clean() {
    let mut meta = SimRng::new(0xE16E_0001);
    let mut cases = 0;
    while cases < 24 {
        let cfg = random_config(&mut meta);
        let spec = random_protocol(&mut meta);
        let seed = meta.uniform_u64(0, 999);
        if cfg.validate().is_err() || !spec.is_valid() {
            continue;
        }
        cases += 1;
        let r = Simulation::run(&cfg, spec, seed)
            .unwrap_or_else(|e| panic!("rejected ({}, seed {seed}): {e}", spec.name()));
        assert_eq!(r.committed, 150, "run must reach its commit target");
        assert!(r.throughput > 0.0);
        assert!(r.sim_seconds > 0.0);
        assert!(
            (0.0..=1.0).contains(&r.block_ratio),
            "block ratio {}",
            r.block_ratio
        );
        assert!(r.mean_response_s > 0.0);
        assert!(r.p50_response_s <= r.p95_response_s && r.p95_response_s <= r.p99_response_s);
        if cfg.resources == ResourceMode::Finite {
            assert!(r.utilizations.cpu <= 1.0 + 1e-9);
            assert!(r.utilizations.data_disk <= 1.0 + 1e-9);
            assert!(r.utilizations.log_disk <= 1.0 + 1e-9);
        } else {
            // infinite-server "utilization" is mean concurrency — just
            // finite and non-negative
            assert!(r.utilizations.cpu.is_finite() && r.utilizations.cpu >= 0.0);
        }
        // lending happens only under OPT
        if !spec.opt {
            assert_eq!(r.borrow_ratio, 0.0);
            assert_eq!(r.aborted_borrower, 0);
        }
        // surprise aborts only when configured
        if cfg.cohort_abort_prob == 0.0 {
            assert_eq!(r.aborted_surprise, 0);
        }
        // no failures configured => none observed
        assert_eq!(r.faults.master_crashes, 0);
    }
}

/// Determinism holds across the whole configuration space.
#[test]
fn random_configs_are_deterministic() {
    let mut meta = SimRng::new(0xE16E_0002);
    let mut cases = 0;
    while cases < 12 {
        let cfg = random_config(&mut meta);
        let spec = random_protocol(&mut meta);
        let seed = meta.uniform_u64(0, 999);
        if cfg.validate().is_err() || !spec.is_valid() {
            continue;
        }
        cases += 1;
        let a = Simulation::run(&cfg, spec, seed).unwrap();
        let b = Simulation::run(&cfg, spec, seed).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.committed, b.committed);
        assert!((a.throughput - b.throughput).abs() < 1e-12);
        assert!((a.block_ratio - b.block_ratio).abs() < 1e-12);
    }
}

/// In conflict-free runs the measured overheads equal the analytic
/// model for every protocol and degree of distribution.
#[test]
fn random_degrees_match_overhead_model() {
    let mut meta = SimRng::new(0xE16E_0003);
    for _ in 0..12 {
        let degree = meta.uniform_u64(1, 6) as u32;
        let spec = random_protocol(&mut meta);
        let seed = meta.uniform_u64(0, 99);
        let mut cfg = SystemConfig::paper_baseline();
        cfg.num_sites = 8;
        cfg.dist_degree = degree;
        cfg.cohort_size = 3;
        cfg.db_size = 80_000;
        cfg.mpl = 1;
        cfg.run.warmup_transactions = 20;
        cfg.run.measured_transactions = 300;
        let r = Simulation::run(&cfg, spec, seed).unwrap();
        assert_eq!(r.total_aborts(), 0);
        let o = spec.committed_overheads(degree);
        // Transactions straddling the window boundary shift the ratios
        // by up to (in-flight / measured) of the per-txn count: use a
        // tolerance relative to the expected value.
        let tol = |expected: u64| (expected as f64 * 0.03).max(0.3);
        assert!(
            (r.exec_messages_per_commit - o.exec_messages as f64).abs() < tol(o.exec_messages),
            "{} d={degree}: exec {} vs {}",
            spec.name(),
            r.exec_messages_per_commit,
            o.exec_messages
        );
        assert!(
            (r.commit_messages_per_commit - o.commit_messages as f64).abs()
                < tol(o.commit_messages),
            "{} d={degree}: commit {} vs {}",
            spec.name(),
            r.commit_messages_per_commit,
            o.commit_messages
        );
        assert!(
            (r.forced_writes_per_commit - o.forced_writes as f64).abs() < tol(o.forced_writes),
            "{} d={degree}: forced {} vs {}",
            spec.name(),
            r.forced_writes_per_commit,
            o.forced_writes
        );
    }
}
