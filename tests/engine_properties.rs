//! Property-based tests over the whole engine: random (valid)
//! configurations and protocols must always produce runs that satisfy
//! the global invariants — completion, conservation, metric sanity,
//! and agreement with the analytic overhead model when conflict-free.

use distcommit::db::config::{ResourceMode, SystemConfig, TransType};
use distcommit::db::engine::Simulation;
use distcommit::proto::ProtocolSpec;
use proptest::prelude::*;
use simkernel::SimDuration;

fn arb_protocol() -> impl Strategy<Value = ProtocolSpec> {
    proptest::sample::select(ProtocolSpec::ALL.to_vec())
}

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (
        2usize..=8,          // num_sites
        1u32..=4,            // dist_degree (clamped to sites below)
        2u32..=8,            // cohort_size
        0u32..=10,           // update_prob tenths
        1u32..=2,            // num_cpus
        1u32..=3,            // num_data_disks
        1u32..=2,            // num_log_disks
        1u32..=6,            // mpl
        proptest::bool::ANY, // sequential?
        proptest::bool::ANY, // infinite resources?
        0u32..=1,            // abort prob in {0, 0.05}
        50u64..=600,         // pages per site scale
    )
        .prop_map(
            |(sites, degree, cohort, upd, cpus, dd, ld, mpl, seq, inf, abortp, pps)| {
                let mut cfg = SystemConfig::paper_baseline();
                cfg.num_sites = sites;
                cfg.dist_degree = degree.min(sites as u32);
                cfg.cohort_size = cohort;
                cfg.update_prob = upd as f64 / 10.0;
                cfg.num_cpus = cpus;
                cfg.num_data_disks = dd;
                cfg.num_log_disks = ld;
                cfg.mpl = mpl;
                cfg.trans_type = if seq {
                    TransType::Sequential
                } else {
                    TransType::Parallel
                };
                cfg.resources = if inf {
                    ResourceMode::Infinite
                } else {
                    ResourceMode::Finite
                };
                cfg.cohort_abort_prob = abortp as f64 * 0.05;
                // keep the hot path fast and the page pool valid
                let pps = pps.max(cfg.max_cohort_pages() * 2);
                cfg.db_size = pps * sites as u64;
                cfg.page_cpu = SimDuration::from_millis(5);
                cfg.run.warmup_transactions = 20;
                cfg.run.measured_transactions = 150;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any valid configuration × protocol × seed runs to completion
    /// with sane metrics.
    #[test]
    fn random_configs_run_clean(cfg in arb_config(), spec in arb_protocol(), seed in 0u64..1000) {
        prop_assume!(cfg.validate().is_ok());
        // feature-compatibility the engine enforces:
        prop_assume!(spec.is_valid());
        let r = match Simulation::run(&cfg, spec, seed) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("rejected: {e}"))),
        };
        prop_assert_eq!(r.committed, 150, "run must reach its commit target");
        prop_assert!(r.throughput > 0.0);
        prop_assert!(r.sim_seconds > 0.0);
        prop_assert!((0.0..=1.0).contains(&r.block_ratio), "block ratio {}", r.block_ratio);
        prop_assert!(r.mean_response_s > 0.0);
        prop_assert!(r.p50_response_s <= r.p95_response_s && r.p95_response_s <= r.p99_response_s);
        if cfg.resources == ResourceMode::Finite {
            prop_assert!(r.utilizations.cpu <= 1.0 + 1e-9);
            prop_assert!(r.utilizations.data_disk <= 1.0 + 1e-9);
            prop_assert!(r.utilizations.log_disk <= 1.0 + 1e-9);
        } else {
            // infinite-server "utilization" is mean concurrency — just
            // finite and non-negative
            prop_assert!(r.utilizations.cpu.is_finite() && r.utilizations.cpu >= 0.0);
        }
        // lending happens only under OPT
        if !spec.opt {
            prop_assert_eq!(r.borrow_ratio, 0.0);
            prop_assert_eq!(r.aborted_borrower, 0);
        }
        // surprise aborts only when configured
        if cfg.cohort_abort_prob == 0.0 {
            prop_assert_eq!(r.aborted_surprise, 0);
        }
        // no failures configured => none observed
        prop_assert_eq!(r.master_crashes, 0);
    }

    /// Determinism holds across the whole configuration space.
    #[test]
    fn random_configs_are_deterministic(cfg in arb_config(), spec in arb_protocol(), seed in 0u64..1000) {
        prop_assume!(cfg.validate().is_ok() && spec.is_valid());
        let a = Simulation::run(&cfg, spec, seed).unwrap();
        let b = Simulation::run(&cfg, spec, seed).unwrap();
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.committed, b.committed);
        prop_assert!((a.throughput - b.throughput).abs() < 1e-12);
        prop_assert!((a.block_ratio - b.block_ratio).abs() < 1e-12);
    }

    /// In conflict-free runs the measured overheads equal the analytic
    /// model for every protocol and degree of distribution.
    #[test]
    fn random_degrees_match_overhead_model(
        degree in 1u32..=6,
        spec in arb_protocol(),
        seed in 0u64..100,
    ) {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.num_sites = 8;
        cfg.dist_degree = degree;
        cfg.cohort_size = 3;
        cfg.db_size = 80_000;
        cfg.mpl = 1;
        cfg.run.warmup_transactions = 20;
        cfg.run.measured_transactions = 300;
        let r = Simulation::run(&cfg, spec, seed).unwrap();
        prop_assert_eq!(r.total_aborts(), 0);
        let o = spec.committed_overheads(degree);
        // Transactions straddling the window boundary shift the ratios
        // by up to (in-flight / measured) of the per-txn count: use a
        // tolerance relative to the expected value.
        let tol = |expected: u64| (expected as f64 * 0.03).max(0.3);
        prop_assert!((r.exec_messages_per_commit - o.exec_messages as f64).abs() < tol(o.exec_messages),
            "{} d={degree}: exec {} vs {}", spec.name(), r.exec_messages_per_commit, o.exec_messages);
        prop_assert!((r.commit_messages_per_commit - o.commit_messages as f64).abs() < tol(o.commit_messages),
            "{} d={degree}: commit {} vs {}", spec.name(), r.commit_messages_per_commit, o.commit_messages);
        prop_assert!((r.forced_writes_per_commit - o.forced_writes as f64).abs() < tol(o.forced_writes),
            "{} d={degree}: forced {} vs {}", spec.name(), r.forced_writes_per_commit, o.forced_writes);
    }
}
