//! Shard-count invariance of the site-sharded parallel engine.
//!
//! The parallel engine's contract (see `crates/core/src/engine/par`)
//! is that its output is a pure function of the configuration, the
//! protocol and the seed — **never** of the shard count: `--shards 1`
//! runs the same window/barrier loop inline that `--shards 8` spreads
//! over worker threads, so every report field, every series window and
//! every trace byte must agree. These tests pin that matrix:
//! shards × jobs × seeds, plus the envelope edges (serial fallback,
//! typed rejections, faults and replication inside the envelope).

use distcommit::db::config::{ConfigError, FailureConfig, SystemConfig, Topology};
use distcommit::db::engine::{chrome_trace_json, SeriesConfig, SeriesFormat, Simulation};
use distcommit::db::experiments::{self, Scale};
use distcommit::db::metrics::{ReportFormat, SimReport};
use distcommit::db::output::render_sweep_json;
use distcommit::proto::ProtocolSpec;
use simkernel::SimDuration;

/// A small WAN configuration inside the parallel envelope: 8 sites in
/// 4 regions, 10 ms inter-region latency with jitter.
fn wan_cfg(shards: u32) -> SystemConfig {
    SystemConfig::paper_baseline()
        .with_topology(Topology {
            regions: 4,
            lan_latency: SimDuration::from_millis(1),
            wan_latency: SimDuration::from_millis(10),
            jitter: 0.2,
            hot_site_prob: 0.0,
        })
        .with_run_length(20, 150)
        .with_shards(shards)
}

/// Reports must be byte-identical across shard counts: compare the
/// rendered JSON, which covers every field at full precision.
fn report_bytes(r: &SimReport) -> String {
    r.render(ReportFormat::Json)
}

#[test]
fn parallel_smoke_completes_the_run() {
    let cfg = wan_cfg(4);
    let report = Simulation::run_auto(&cfg, ProtocolSpec::TWO_PC, 7).unwrap();
    // Completion is checked at window barriers, so the measured count
    // can overshoot the target within the final window — never
    // undershoot it.
    assert!(report.committed >= 150, "measured commit target");
    assert!(report.throughput > 0.0);
    assert!(report.events > 0);
}

#[test]
fn reports_identical_across_shards_jobs_and_seeds() {
    for spec in [ProtocolSpec::TWO_PC, ProtocolSpec::PA, ProtocolSpec::OPT_PC] {
        for seed_off in [0u64, 1, 2] {
            let seed = 42 + seed_off;
            let baseline = report_bytes(&Simulation::run_auto(&wan_cfg(1), spec, seed).unwrap());
            for shards in [2u32, 4] {
                let got =
                    report_bytes(&Simulation::run_auto(&wan_cfg(shards), spec, seed).unwrap());
                assert_eq!(baseline, got, "{} seed {seed} shards {shards}", spec.name());
            }
        }
    }
}

/// Windowed series and Chrome traces are produced *during* the run
/// (not reconstructed at the end), so they exercise the barrier-time
/// snapshot and trace-drain paths — both must be byte-identical too.
#[test]
fn series_and_traces_identical_across_shards() {
    let scfg = SeriesConfig {
        window: SimDuration::from_secs(2),
        per_site: true,
    };
    let run = |shards: u32| {
        let (report, series) =
            Simulation::run_auto_with_series(&wan_cfg(shards), ProtocolSpec::TWO_PC, 42, &scfg)
                .unwrap();
        let (_, trace) =
            Simulation::run_auto_traced(&wan_cfg(shards), ProtocolSpec::TWO_PC, 42, 32).unwrap();
        (
            report_bytes(&report),
            series.render(SeriesFormat::Json),
            chrome_trace_json(&trace),
        )
    };
    let baseline = run(1);
    assert!(baseline.1.len() > 2, "series should have windows");
    assert!(baseline.2.len() > 2, "trace should have events");
    for shards in [2u32, 4] {
        assert_eq!(baseline, run(shards), "shards {shards}");
    }
}

/// Master + cohort crashes with a blocking takeover stay inside the
/// parallel envelope; the fault counters and blocked-time accounting
/// must be shard-count-invariant like everything else.
#[test]
fn faulty_blocking_run_is_shard_invariant() {
    let cfg = |shards: u32| {
        wan_cfg(shards).with_failures(FailureConfig {
            master_crash_prob: 0.05,
            cohort_crash_prob: 0.02,
            ..FailureConfig::default()
        })
    };
    let baseline = Simulation::run_auto(&cfg(1), ProtocolSpec::TWO_PC, 42).unwrap();
    assert!(
        baseline.faults.master_crash_trials > 0,
        "failure model should be active"
    );
    let baseline = report_bytes(&baseline);
    for shards in [2u32, 4] {
        let got =
            report_bytes(&Simulation::run_auto(&cfg(shards), ProtocolSpec::TWO_PC, 42).unwrap());
        assert_eq!(baseline, got, "shards {shards}");
    }
}

/// Replicated Paxos Commit (F = 1, fault-free) runs the acceptor
/// quorum machinery through the parallel path.
#[test]
fn replicated_paxos_run_is_shard_invariant() {
    let cfg = |shards: u32| wan_cfg(shards).with_replication(1);
    let baseline = report_bytes(&Simulation::run_auto(&cfg(1), ProtocolSpec::PAXOS, 42).unwrap());
    for shards in [2u32, 4] {
        let got =
            report_bytes(&Simulation::run_auto(&cfg(shards), ProtocolSpec::PAXOS, 42).unwrap());
        assert_eq!(baseline, got, "shards {shards}");
    }
}

/// Intra-run shards compose with the inter-cell `--jobs` grid: every
/// (shards, jobs) combination renders the same sweep JSON.
#[test]
fn sweep_output_invariant_across_shards_and_jobs() {
    let sweep_bytes = |shards: u32, jobs: usize| {
        let cfg = wan_cfg(shards);
        let specs = vec![
            ("2PC".to_string(), ProtocolSpec::TWO_PC, cfg.clone()),
            ("PA".to_string(), ProtocolSpec::PA, cfg.clone()),
        ];
        let scale = Scale {
            warmup: 20,
            measured: 150,
            mpls: vec![2, 4],
            seed: 42,
            replications: 1,
            jobs: Some(jobs),
        };
        let series = experiments::sweep(&cfg, &specs, &scale).unwrap();
        let exp = experiments::Experiment {
            id: "shard-matrix".into(),
            title: "shard matrix".into(),
            config: cfg,
            series,
        };
        render_sweep_json(&exp)
    };
    let baseline = sweep_bytes(1, 1);
    for (shards, jobs) in [(1u32, 4usize), (2, 1), (2, 4), (4, 1), (4, 4)] {
        assert_eq!(
            baseline,
            sweep_bytes(shards, jobs),
            "shards {shards} jobs {jobs}"
        );
    }
}

/// Configurations outside the envelope fall back to the serial engine
/// silently: same bytes with or without `--shards`, so classic
/// zero-topology outputs (and their goldens) are untouched by the flag.
#[test]
fn serial_fallback_outside_the_envelope() {
    // No topology at all: the flat LAN baseline.
    let flat = SystemConfig::paper_baseline().with_run_length(20, 150);
    let serial = report_bytes(&Simulation::run(&flat, ProtocolSpec::TWO_PC, 42).unwrap());
    let flagged = report_bytes(
        &Simulation::run_auto(&flat.clone().with_shards(4), ProtocolSpec::TWO_PC, 42).unwrap(),
    );
    assert_eq!(serial, flagged, "no topology");

    // A single region has no cross-region latency to use as lookahead.
    let one_region = flat.clone().with_topology(Topology {
        regions: 1,
        lan_latency: SimDuration::from_millis(1),
        wan_latency: SimDuration::from_millis(10),
        jitter: 0.0,
        hot_site_prob: 0.0,
    });
    let serial = report_bytes(&Simulation::run(&one_region, ProtocolSpec::TWO_PC, 42).unwrap());
    let flagged = report_bytes(
        &Simulation::run_auto(&one_region.clone().with_shards(4), ProtocolSpec::TWO_PC, 42)
            .unwrap(),
    );
    assert_eq!(serial, flagged, "single region");

    // CENT collapses to one effective site.
    let serial = report_bytes(&Simulation::run(&wan_cfg(0), ProtocolSpec::CENT, 42).unwrap());
    let flagged = report_bytes(&Simulation::run_auto(&wan_cfg(4), ProtocolSpec::CENT, 42).unwrap());
    assert_eq!(serial, flagged, "centralized");
}

/// Semantics the parallel interpreter cannot honour are rejected with
/// a typed error rather than silently degraded — and the identical
/// configuration *without* `--shards` still runs.
#[test]
fn unsupported_combinations_rejected_with_typed_errors() {
    let reject = |cfg: &SystemConfig, spec: ProtocolSpec| {
        let err = Simulation::run_auto(cfg, spec, 42).unwrap_err();
        assert!(matches!(err, ConfigError::Invalid(_)), "{spec:?}: {err}");
        let mut serial = cfg.clone();
        serial.shards = 0;
        Simulation::run_auto(&serial, spec, 42).unwrap();
    };
    // Message loss needs retransmission timers on global time.
    reject(
        &wan_cfg(4).with_failures(FailureConfig {
            msg_loss_prob: 0.01,
            ..FailureConfig::default()
        }),
        ProtocolSpec::TWO_PC,
    );
    // Crash takeover (3PC termination, Paxos failover) spans shards.
    reject(
        &wan_cfg(4).with_failures(FailureConfig::master_crashes(0.01)),
        ProtocolSpec::THREE_PC,
    );
    reject(
        &wan_cfg(4)
            .with_replication(1)
            .with_failures(FailureConfig::master_crashes(0.01)),
        ProtocolSpec::PAXOS,
    );
    // Chained 2PC and the pre-claiming baseline use non-star routing.
    reject(&wan_cfg(4), ProtocolSpec::LINEAR_2PC);
    reject(&wan_cfg(4), ProtocolSpec::DPCC);
}

/// `--shards` beyond the site count is a configuration error.
#[test]
fn more_shards_than_sites_rejected() {
    let err = Simulation::run_auto(&wan_cfg(9), ProtocolSpec::TWO_PC, 42).unwrap_err();
    assert!(matches!(err, ConfigError::Invalid(_)), "{err}");
}
