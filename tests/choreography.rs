//! Step-by-step protocol choreography validation via the engine's
//! trace facility: each protocol must exchange exactly the messages and
//! force exactly the log records that §2 of the paper prescribes, in
//! causal order.

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::{LogLabel, MsgLabel, Simulation, Trace, TraceEvent};
use distcommit::proto::ProtocolSpec;
use simkernel::SimTime;

/// A conflict-free 3-site setup so transaction 1's trace is pure
/// protocol, no lock waits or restarts.
fn traced(spec: ProtocolSpec) -> Trace {
    let cfg = SystemConfig::paper_baseline()
        .with_db_size(80_000)
        .with_mpl(1)
        .with_run_length(0, 40);
    let (report, trace) = Simulation::run_traced(&cfg, spec, 5, 1).expect("valid config");
    assert_eq!(
        report.total_aborts(),
        0,
        "choreography runs must be conflict-free"
    );
    trace
}

fn is_send(label: MsgLabel) -> impl Fn(&TraceEvent) -> bool {
    move |e| matches!(e, TraceEvent::Send { label: l, .. } if *l == label)
}

fn is_log_done(label: LogLabel) -> impl Fn(&TraceEvent) -> bool {
    move |e| matches!(e, TraceEvent::LogDone { label: l, .. } if *l == label)
}

#[test]
fn two_pc_commit_choreography() {
    let tr = traced(ProtocolSpec::TWO_PC);
    // §2.1, DistDegree 3 = 2 remote cohorts.
    assert_eq!(tr.remote_sends(1, MsgLabel::InitCohort), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::WorkDone), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::Prepare), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::VoteYes), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::DecisionCommit), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::Ack), 2);
    // Local (free) copies exist for the master-site cohort.
    assert_eq!(tr.all_sends(1, MsgLabel::Prepare), 3);
    assert_eq!(tr.all_sends(1, MsgLabel::VoteYes), 3);
    assert_eq!(tr.all_sends(1, MsgLabel::Ack), 3);
    // Forced writes: prepare at every cohort, master commit, commit at
    // every cohort. Nothing else.
    assert_eq!(tr.forced_writes(1, LogLabel::Prepare), 3);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterCommit), 1);
    assert_eq!(tr.forced_writes(1, LogLabel::CohortCommit), 3);
    assert_eq!(tr.forced_writes(1, LogLabel::Collecting), 0);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterPrecommit), 0);
    // Causal order.
    tr.check_order(is_send(MsgLabel::WorkDone), is_send(MsgLabel::Prepare))
        .expect("prepares only after all WORKDONEs");
    tr.check_order(is_log_done(LogLabel::Prepare), is_send(MsgLabel::VoteYes))
        .unwrap_err(); // per-cohort, not global: some vote before others' logs...
                       // ...so check the per-cohort property instead: the first vote comes
                       // after the first prepare record, and the master commit record
                       // comes after every vote.
    tr.check_order(is_send(MsgLabel::VoteYes), |e| {
        matches!(
            e,
            TraceEvent::ForceLog {
                label: LogLabel::MasterCommit,
                ..
            }
        )
    })
    .expect("master decides only after all votes");
    tr.check_order(
        is_log_done(LogLabel::MasterCommit),
        is_send(MsgLabel::DecisionCommit),
    )
    .expect("COMMIT messages only after the forced commit record");
    tr.check_order(is_send(MsgLabel::DecisionCommit), is_send(MsgLabel::Ack))
        .expect("ACKs only after the decision went out");
    // Decision milestone present and positive.
    assert!(tr.events.iter().any(|e| matches!(
        e,
        TraceEvent::Decided {
            txn: 1,
            commit: true,
            ..
        }
    )));
}

#[test]
fn presumed_commit_choreography() {
    let tr = traced(ProtocolSpec::PC);
    // §2.3: collecting record first, no commit ACKs, no forced cohort
    // commit records.
    assert_eq!(tr.forced_writes(1, LogLabel::Collecting), 1);
    assert_eq!(tr.forced_writes(1, LogLabel::Prepare), 3);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterCommit), 1);
    assert_eq!(tr.forced_writes(1, LogLabel::CohortCommit), 0);
    assert_eq!(tr.remote_sends(1, MsgLabel::Ack), 0);
    assert_eq!(tr.remote_sends(1, MsgLabel::DecisionCommit), 2);
    // The collecting record precedes the first PREPARE.
    tr.check_order(
        is_log_done(LogLabel::Collecting),
        is_send(MsgLabel::Prepare),
    )
    .expect("collecting record must be on disk before the vote starts");
}

#[test]
fn three_pc_commit_choreography() {
    let tr = traced(ProtocolSpec::THREE_PC);
    // §2.4: a full extra round plus precommit records everywhere.
    assert_eq!(tr.remote_sends(1, MsgLabel::PreCommit), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::PreAck), 2);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterPrecommit), 1);
    assert_eq!(tr.forced_writes(1, LogLabel::CohortPrecommit), 3);
    assert_eq!(tr.forced_writes(1, LogLabel::Prepare), 3);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterCommit), 1);
    assert_eq!(tr.forced_writes(1, LogLabel::CohortCommit), 3);
    // Ordering: votes → master precommit → PRECOMMIT out → preacks →
    // master commit → COMMIT out.
    tr.check_order(is_send(MsgLabel::VoteYes), |e| {
        matches!(
            e,
            TraceEvent::ForceLog {
                label: LogLabel::MasterPrecommit,
                ..
            }
        )
    })
    .expect("precommit after all votes");
    tr.check_order(
        is_log_done(LogLabel::MasterPrecommit),
        is_send(MsgLabel::PreCommit),
    )
    .expect("PRECOMMIT only after the master precommit record");
    tr.check_order(is_send(MsgLabel::PreAck), |e| {
        matches!(
            e,
            TraceEvent::ForceLog {
                label: LogLabel::MasterCommit,
                ..
            }
        )
    })
    .expect("commit record only after all preacks");
    tr.check_order(
        is_log_done(LogLabel::MasterCommit),
        is_send(MsgLabel::DecisionCommit),
    )
    .expect("COMMIT messages after the commit record");
}

#[test]
fn pa_commit_choreography_matches_2pc() {
    // §2.2: PA behaves identically to 2PC for committing transactions.
    let pa = traced(ProtocolSpec::PA);
    let two = traced(ProtocolSpec::TWO_PC);
    for label in [
        MsgLabel::Prepare,
        MsgLabel::VoteYes,
        MsgLabel::DecisionCommit,
        MsgLabel::Ack,
    ] {
        assert_eq!(
            pa.remote_sends(1, label),
            two.remote_sends(1, label),
            "{label:?}"
        );
    }
    for label in [
        LogLabel::Prepare,
        LogLabel::MasterCommit,
        LogLabel::CohortCommit,
    ] {
        assert_eq!(
            pa.forced_writes(1, label),
            two.forced_writes(1, label),
            "{label:?}"
        );
    }
}

#[test]
fn cent_has_no_messages_and_one_record() {
    let tr = traced(ProtocolSpec::CENT);
    let remote_total: usize = tr
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Send {
                    txn: 1,
                    local: false,
                    ..
                }
            )
        })
        .count();
    assert_eq!(remote_total, 0, "CENT exchanges no messages at all");
    assert_eq!(tr.forced_writes(1, LogLabel::MasterCommit), 1);
    assert_eq!(tr.forced_writes(1, LogLabel::Prepare), 0);
    assert_eq!(tr.forced_writes(1, LogLabel::CohortCommit), 0);
}

#[test]
fn dpcc_distributes_data_but_not_commit() {
    let tr = traced(ProtocolSpec::DPCC);
    assert_eq!(tr.remote_sends(1, MsgLabel::InitCohort), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::WorkDone), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::Prepare), 0);
    assert_eq!(tr.remote_sends(1, MsgLabel::DecisionCommit), 0);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterCommit), 1);
    assert_eq!(tr.forced_writes(1, LogLabel::Prepare), 0);
}

#[test]
fn all_no_votes_abort_choreography() {
    // cohort_abort_prob = 1: every cohort vetoes, every transaction
    // aborts forever; cap the simulated time and inspect the first
    // transaction's abort path.
    let mut cfg = SystemConfig::paper_baseline()
        .with_db_size(80_000)
        .with_mpl(1)
        .with_cohort_abort_prob(1.0)
        .with_run_length(0, 10);
    cfg.run.max_sim_time = Some(SimTime::from_secs(30));

    // 2PC: NO voters force their abort records; there are no prepared
    // cohorts, so no ABORT messages and no ACKs; the master forces its
    // abort record.
    let (_, tr) = Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 3, 1).unwrap();
    assert_eq!(tr.remote_sends(1, MsgLabel::VoteNo), 2);
    assert_eq!(tr.remote_sends(1, MsgLabel::VoteYes), 0);
    assert_eq!(tr.forced_writes(1, LogLabel::NoVoteAbort), 3);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterAbort), 1);
    assert_eq!(tr.forced_writes(1, LogLabel::Prepare), 0);
    assert_eq!(tr.remote_sends(1, MsgLabel::DecisionAbort), 0);
    assert!(tr
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::Aborted { txn: 1, .. })));

    // PA: "in case of doubt, abort" — nothing is forced anywhere.
    let (_, tr) = Simulation::run_traced(&cfg, ProtocolSpec::PA, 3, 1).unwrap();
    assert_eq!(tr.forced_writes(1, LogLabel::NoVoteAbort), 0);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterAbort), 0);
    assert_eq!(tr.remote_sends(1, MsgLabel::VoteNo), 2);
}

#[test]
fn single_no_vote_aborts_the_prepared_rest() {
    // Deterministically: with p = 1.0 every cohort votes NO. To get a
    // *mixed* vote we instead reconstruct from a p = 0.5 run: find a
    // traced transaction whose trace has both YES and NO votes and
    // check the abort fan-out against the prepared count.
    let cfg = SystemConfig::paper_baseline()
        .with_db_size(80_000)
        .with_mpl(1)
        .with_cohort_abort_prob(0.5)
        .with_run_length(0, 30);
    let (_, tr) = Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 11, 200).unwrap();
    let mut found = false;
    for txn in tr.txns() {
        let yes = tr.all_sends(txn, MsgLabel::VoteYes);
        let no = tr.all_sends(txn, MsgLabel::VoteNo);
        if yes > 0 && no > 0 {
            found = true;
            // ABORT goes exactly to the YES voters, each of which forces
            // an abort record and ACKs (2PC).
            assert_eq!(tr.all_sends(txn, MsgLabel::DecisionAbort), yes, "txn {txn}");
            assert_eq!(
                tr.forced_writes(txn, LogLabel::CohortAbort),
                yes,
                "txn {txn}"
            );
            assert_eq!(tr.all_sends(txn, MsgLabel::Ack), yes, "txn {txn}");
            assert_eq!(
                tr.forced_writes(txn, LogLabel::NoVoteAbort),
                no,
                "txn {txn}"
            );
        }
    }
    assert!(
        found,
        "expected at least one mixed-vote transaction in 200 traced"
    );
}

#[test]
fn opt_shelf_lifecycle_is_balanced() {
    // Under contention with no surprise aborts, every shelved cohort is
    // eventually unshelved (its lenders can only commit).
    let cfg = SystemConfig::pure_data_contention()
        .with_mpl(6)
        .with_run_length(0, 400);
    let (report, tr) = Simulation::run_traced(&cfg, ProtocolSpec::OPT_2PC, 13, 100_000).unwrap();
    assert!(
        report.borrow_ratio > 0.0,
        "need borrowing for this test to bite"
    );
    let shelved: Vec<_> = tr
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Shelved { txn, cohort, .. } => Some((*txn, *cohort)),
            _ => None,
        })
        .collect();
    assert!(
        !shelved.is_empty(),
        "expected shelf activity at MPL 6 under DC"
    );
    for (txn, cohort) in shelved {
        let resolved = tr.events.iter().any(|e| match e {
            TraceEvent::Unshelved {
                txn: t, cohort: c, ..
            } => *t == txn && *c == cohort,
            TraceEvent::Aborted { txn: t, .. } => *t == txn,
            _ => false,
        });
        // Transactions still in flight at run end are exempt.
        let decided = tr
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Decided { txn: t, .. } if *t == txn));
        assert!(
            resolved || !decided,
            "txn {txn} cohort {cohort} was shelved, decided, but never unshelved"
        );
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let cfg = SystemConfig::paper_baseline()
        .with_mpl(4)
        .with_run_length(50, 400);
    let plain = Simulation::run(&cfg, ProtocolSpec::OPT_2PC, 17).unwrap();
    let (traced, trace) = Simulation::run_traced(&cfg, ProtocolSpec::OPT_2PC, 17, 10_000).unwrap();
    assert_eq!(plain.events, traced.events);
    assert_eq!(plain.committed, traced.committed);
    assert!((plain.throughput - traced.throughput).abs() < 1e-12);
    assert!(!trace.events.is_empty());
}
