//! Cross-regime integration tests: sequential transactions (§5.8),
//! fast networks (§5.4), read-mixed workloads, and odd-but-legal
//! configurations. These exercise engine paths the figure experiments
//! do not.

use distcommit::db::config::{SystemConfig, TransType};
use distcommit::db::engine::Simulation;
use distcommit::proto::ProtocolSpec;

fn short(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> distcommit::db::metrics::SimReport {
    let mut cfg = cfg.clone();
    cfg.run.warmup_transactions = 150;
    cfg.run.measured_transactions = 1_000;
    Simulation::run(&cfg, spec, seed).expect("valid config")
}

/// §5.8: sequential transactions stretch the execution phase, so the
/// commit-to-execution ratio falls and protocol differences shrink.
///
/// The paper's claim is about *expected* throughput: at 1 000 measured
/// transactions the per-seed gap estimate has a standard error of the
/// same order as the shrinkage itself, so a single-seed comparison is a
/// coin flip, not a test of §5.8. Average the relative gap over several
/// seeds in both regimes before comparing.
#[test]
fn sequential_execution_shrinks_protocol_differences() {
    let mut par = SystemConfig::paper_baseline();
    par.mpl = 4;
    let mut seq = par.clone();
    seq.trans_type = TransType::Sequential;

    let gap = |cfg: &SystemConfig, seed: u64| {
        let two_pc = short(cfg, ProtocolSpec::TWO_PC, seed);
        let dpcc = short(cfg, ProtocolSpec::DPCC, seed);
        (dpcc.throughput - two_pc.throughput) / dpcc.throughput
    };
    let seeds = [1u64, 2, 3];
    let par_gap: f64 = seeds.iter().map(|&s| gap(&par, s)).sum::<f64>() / seeds.len() as f64;
    let seq_gap: f64 = seeds.iter().map(|&s| gap(&seq, s)).sum::<f64>() / seeds.len() as f64;
    assert!(
        seq_gap < par_gap,
        "relative DPCC-2PC gap should shrink for sequential txns ({seq_gap:.3} vs {par_gap:.3})"
    );
    // Sequential responses are longer at equal MPL.
    let par_resp = short(&par, ProtocolSpec::TWO_PC, 1).mean_response_s;
    let seq_resp = short(&seq, ProtocolSpec::TWO_PC, 1).mean_response_s;
    assert!(seq_resp > par_resp);
}

/// Sequential transactions commit with exactly the same overheads.
#[test]
fn sequential_overheads_match_parallel() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.trans_type = TransType::Sequential;
    cfg.db_size = 80_000; // conflict-free
    cfg.mpl = 1;
    let r = short(&cfg, ProtocolSpec::TWO_PC, 2);
    assert_eq!(r.total_aborts(), 0);
    let expected = ProtocolSpec::TWO_PC.committed_overheads(3);
    assert!((r.forced_writes_per_commit - expected.forced_writes as f64).abs() < 0.2);
    assert!((r.commit_messages_per_commit - expected.commit_messages as f64).abs() < 0.2);
}

/// §5.4: a 5x faster network lifts every distributed protocol and
/// narrows (but does not erase) the DPCC-2PC gap; OPT still wins under
/// contention because borrowing attacks data contention, not messages.
#[test]
fn fast_network_narrows_but_keeps_the_gaps() {
    let slow = {
        let mut c = SystemConfig::paper_baseline();
        c.mpl = 4;
        c
    };
    let fast = slow.fast_network();

    let slow_2pc = short(&slow, ProtocolSpec::TWO_PC, 3);
    let fast_2pc = short(&fast, ProtocolSpec::TWO_PC, 3);
    assert!(
        fast_2pc.throughput > slow_2pc.throughput,
        "faster network must help 2PC"
    );

    let fast_dpcc = short(&fast, ProtocolSpec::DPCC, 3);
    let fast_cent = short(&fast, ProtocolSpec::CENT, 3);
    // "DPCC and CENT are virtually indistinguishable" with MsgCPU = 1ms.
    let rel = (fast_cent.throughput - fast_dpcc.throughput).abs() / fast_cent.throughput;
    assert!(
        rel < 0.08,
        "CENT and DPCC should nearly coincide on a fast network ({rel:.3})"
    );

    // Forced-write overheads still separate 2PC from DPCC under pure DC.
    let mut fast_dc = SystemConfig::pure_data_contention().fast_network();
    fast_dc.mpl = 5;
    let dc_2pc = short(&fast_dc, ProtocolSpec::TWO_PC, 4);
    let dc_dpcc = short(&fast_dc, ProtocolSpec::DPCC, 4);
    let dc_opt = short(&fast_dc, ProtocolSpec::OPT_2PC, 4);
    assert!(dc_dpcc.throughput > dc_2pc.throughput * 1.1);
    assert!(dc_opt.throughput > dc_2pc.throughput * 1.05);
}

/// Read-heavy workloads: read locks released at PREPARE leave little
/// prepared data to lend, so OPT ≈ 2PC, and deadlocks nearly vanish.
#[test]
fn read_mostly_workload_behaves() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.update_prob = 0.2;
    cfg.mpl = 6;
    let two_pc = short(&cfg, ProtocolSpec::TWO_PC, 5);
    let opt = short(&cfg, ProtocolSpec::OPT_2PC, 5);
    let mut all_upd = cfg.clone();
    all_upd.update_prob = 1.0;
    let upd_2pc = short(&all_upd, ProtocolSpec::TWO_PC, 5);
    assert!(
        two_pc.abort_fraction() < upd_2pc.abort_fraction(),
        "fewer updates, fewer deadlocks"
    );
    assert!(
        two_pc.block_ratio < upd_2pc.block_ratio,
        "fewer updates, less blocking"
    );
    assert!(
        opt.borrow_ratio < 1.0,
        "read-mostly leaves little to borrow"
    );
}

/// A pure read-only workload never deadlocks and never blocks on data.
#[test]
fn read_only_workload_is_conflict_free() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.update_prob = 0.0;
    cfg.mpl = 6;
    let r = short(&cfg, ProtocolSpec::TWO_PC, 6);
    assert_eq!(r.total_aborts(), 0);
    assert!(
        r.block_ratio < 1e-9,
        "readers never block readers, got {}",
        r.block_ratio
    );
}

/// Single-site "distributed" transactions (DistDegree = 1) degenerate
/// gracefully: no messages at all, and a full local commit protocol.
#[test]
fn degree_one_transactions_work() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.dist_degree = 1;
    cfg.db_size = 80_000;
    cfg.mpl = 2;
    let r = short(&cfg, ProtocolSpec::TWO_PC, 7);
    assert_eq!(r.total_aborts(), 0);
    assert!(r.exec_messages_per_commit < 0.01);
    assert!(r.commit_messages_per_commit < 0.01);
    // prepare + commit at the lone cohort + master decision
    assert!((r.forced_writes_per_commit - 3.0).abs() < 0.1);
}

/// Transactions spanning every site (DistDegree = NumSites).
#[test]
fn full_span_transactions_work() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.dist_degree = 8;
    cfg.cohort_size = 2;
    cfg.mpl = 2;
    let r = short(&cfg, ProtocolSpec::OPT_2PC, 8);
    assert_eq!(r.committed, 1_000);
    // 7 remote cohorts * 2 transfers
    assert!((r.exec_messages_per_commit - 14.0).abs() < 1.0);
}

/// Big multiprocessor sites: several CPUs drain one queue.
#[test]
fn multi_cpu_sites_scale() {
    let mut one = SystemConfig::paper_baseline().higher_distribution();
    one.mpl = 4;
    let mut four = one.clone();
    four.num_cpus = 4;
    // d=6 is CPU-bound, so quadrupling CPUs must raise throughput.
    let r1 = short(&one, ProtocolSpec::TWO_PC, 9);
    let r4 = short(&four, ProtocolSpec::TWO_PC, 9);
    assert!(
        r4.throughput > r1.throughput * 1.3,
        "4 CPUs ({:.1}) should clearly beat 1 CPU ({:.1}) in a CPU-bound regime",
        r4.throughput,
        r1.throughput
    );
}

/// Skewed (hot-spot) access concentrates conflicts: an 80–20 workload
/// must show more blocking and more deadlocks than uniform access, and
/// OPT's lending must matter more.
#[test]
fn hot_spots_concentrate_contention() {
    use distcommit::db::config::HotSpot;
    let mut uniform = SystemConfig::paper_baseline();
    uniform.mpl = 6;
    let mut skewed = uniform.clone();
    skewed.hot_spot = Some(HotSpot {
        data_fraction: 0.2,
        access_fraction: 0.8,
    });

    let u = short(&uniform, ProtocolSpec::TWO_PC, 11);
    let s = short(&skewed, ProtocolSpec::TWO_PC, 11);
    assert!(
        s.block_ratio > u.block_ratio,
        "skew must increase blocking ({:.3} vs {:.3})",
        s.block_ratio,
        u.block_ratio
    );
    assert!(s.throughput < u.throughput, "skew must cost throughput");
    assert!(s.abort_fraction() >= u.abort_fraction());

    // OPT wins back more under skew than under uniform access.
    let u_opt = short(&uniform, ProtocolSpec::OPT_2PC, 11);
    let s_opt = short(&skewed, ProtocolSpec::OPT_2PC, 11);
    let uniform_gain = u_opt.throughput / u.throughput;
    let skew_gain = s_opt.throughput / s.throughput;
    assert!(
        skew_gain > uniform_gain,
        "OPT should matter more on a hot-spot workload ({skew_gain:.3}x vs {uniform_gain:.3}x)"
    );
    assert!(s_opt.borrow_ratio > u_opt.borrow_ratio);
}

/// Response-time percentiles are ordered and the tail is heavier than
/// the middle under contention.
#[test]
fn response_percentiles_are_coherent() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 8;
    let r = short(&cfg, ProtocolSpec::TWO_PC, 12);
    assert!(r.p50_response_s > 0.0);
    assert!(r.p50_response_s <= r.p95_response_s);
    assert!(r.p95_response_s <= r.p99_response_s);
    // Heavy-tailed under contention: the p99 clearly exceeds the mean.
    assert!(r.p99_response_s > r.mean_response_s);
    // The median sits below the mean for a right-skewed distribution.
    assert!(r.p50_response_s < r.mean_response_s * 1.05);
}

/// The deferred-write flag only adds disk load — turning it on must not
/// change any commit-protocol accounting, just slow things down.
#[test]
fn deferred_writes_cost_throughput_not_correctness() {
    let mut off = SystemConfig::paper_baseline();
    off.mpl = 4;
    let mut on = off.clone();
    on.model_deferred_writes = true;
    let r_off = short(&off, ProtocolSpec::TWO_PC, 10);
    let r_on = short(&on, ProtocolSpec::TWO_PC, 10);
    assert!(
        r_on.throughput < r_off.throughput,
        "write-back load must cost throughput"
    );
    assert!((r_on.forced_writes_per_commit - r_off.forced_writes_per_commit).abs() < 0.2);
    assert!(r_on.utilizations.data_disk > r_off.utilizations.data_disk);
}
