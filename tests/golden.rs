//! Golden-file checks for the machine-readable outputs: the JSON
//! report and the folded-stack flamegraph lines. These formats are
//! consumed by external tools (jq pipelines, flamegraph.pl), so any
//! byte-level drift is a breaking change and must be deliberate.
//!
//! To bless an intentional change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::{FoldSink, SeriesConfig, SeriesFormat, Simulation};
use distcommit::db::metrics::ReportFormat;
use distcommit::proto::ProtocolSpec;
use simkernel::SimDuration;

/// Small but non-trivial: long enough to populate every report section
/// (phases, per-site resources, occupancy percentiles) yet quick to run.
fn golden_cfg() -> SystemConfig {
    SystemConfig::paper_baseline().with_run_length(10, 80)
}

fn check(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test golden`")
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from tests/golden/{name}; if intentional, \
         rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn json_report_matches_golden() {
    let report = Simulation::run(&golden_cfg(), ProtocolSpec::TWO_PC, 2026).expect("valid config");
    check("report.json", &report.render(ReportFormat::Json));
}

/// Every classic spec's full JSON report in one golden: the protocol
/// layer is *data* interpreted by a generic engine, so any change to
/// the spec table or the interpreter that perturbs a single protocol's
/// schedule — message counts, forced writes, timing — drifts here.
/// (The replicated family has its own golden; it postdates this file.)
#[test]
fn every_classic_protocol_report_matches_golden() {
    let mut out = String::new();
    for spec in ProtocolSpec::ALL {
        if spec.is_replicated() {
            continue;
        }
        let report = Simulation::run(&golden_cfg(), spec, 2026).expect("valid config");
        out.push_str(&format!("=== {} ===\n", spec.name()));
        out.push_str(&report.render(ReportFormat::Json));
        out.push('\n');
    }
    check("report_all_protocols.txt", &out);
}

/// The same CLI-shaped fault specification the README examples use:
/// all three fault classes enabled, hot enough that a short run still
/// fires each of them.
fn faulty_cfg() -> SystemConfig {
    let faults = "mc=0.05,cc=0.02,loss=0.05"
        .parse()
        .expect("valid fault spec");
    golden_cfg().with_failures(faults)
}

/// The failure path of the engine — crash injection, recovery timers,
/// retransmissions — byte-for-byte. A refactor that preserves the
/// happy-path goldens but perturbs RNG draws or event ordering under
/// faults drifts here.
#[test]
fn faulty_json_report_matches_golden() {
    let report = Simulation::run(&faulty_cfg(), ProtocolSpec::TWO_PC, 2027).expect("valid config");
    // Not vacuous: the fault classes actually fired in this run.
    assert!(report.faults.master_crashes > 0);
    assert!(report.faults.messages_lost > 0);
    check("report_faulty.json", &report.render(ReportFormat::Json));
}

/// The replicated family's failure path: a Paxos Commit run at F = 1
/// under the same fault mix, pinning the acceptor-quorum choreography,
/// the failover timers, and the replicated overhead model. The run is
/// only meaningful if the headline machinery actually engaged: masters
/// crashed and the surviving acceptors ran termination rounds.
#[test]
fn faulty_paxos_report_matches_golden() {
    let cfg = faulty_cfg().with_replication(1);
    let report = Simulation::run(&cfg, ProtocolSpec::PAXOS, 2027).expect("valid config");
    assert!(report.faults.master_crashes > 0);
    assert!(report.faults.termination_rounds > 0);
    assert!(
        report.overhead_check.is_clean(),
        "{:?}",
        report.overhead_check
    );
    check(
        "report_paxos_faulty.json",
        &report.render(ReportFormat::Json),
    );
}

/// The folded commit-time stacks of a faulty 3PC run (termination
/// protocol, recovery waits) — the failure-path counterpart of
/// `folded_stacks_match_golden`.
#[test]
fn faulty_folded_stacks_match_golden() {
    let (report, fold) = Simulation::run_with_sink(
        &faulty_cfg(),
        ProtocolSpec::THREE_PC,
        2027,
        u64::MAX,
        FoldSink::new(ProtocolSpec::THREE_PC.name()),
    )
    .expect("valid config");
    assert!(report.faults.master_crashes > 0);
    check("fold_faulty.txt", &fold.render());
}

/// Windows narrow enough that the short golden run still spans several
/// of them, with per-site rows on so the widest CSV shape is pinned.
fn golden_series_cfg() -> SeriesConfig {
    SeriesConfig {
        window: SimDuration::from_secs(2),
        per_site: true,
    }
}

/// The windowed-series CSV — consumed by spreadsheet/gnuplot pipelines,
/// so column order and formatting are part of the contract.
#[test]
fn series_csv_matches_golden() {
    let (_, series) = Simulation::run_with_series(
        &golden_cfg(),
        ProtocolSpec::TWO_PC,
        2026,
        &golden_series_cfg(),
    )
    .expect("valid config");
    assert!(series.windows.len() > 2, "golden run spans several windows");
    check("series.csv", &series.render(SeriesFormat::Csv));
}

/// The windowed-series JSON of a faulty OPT run: retransmit and loss
/// counters populated, per-site queues under crash churn.
#[test]
fn faulty_series_json_matches_golden() {
    let (report, series) = Simulation::run_with_series(
        &faulty_cfg(),
        ProtocolSpec::OPT_2PC,
        2027,
        &golden_series_cfg(),
    )
    .expect("valid config");
    assert!(report.faults.messages_lost > 0);
    assert!(series.windows.iter().any(|w| w.messages_lost > 0));
    check("series_faulty.json", &series.render(SeriesFormat::Json));
}

#[test]
fn folded_stacks_match_golden() {
    let (_, fold) = Simulation::run_with_sink(
        &golden_cfg(),
        ProtocolSpec::THREE_PC,
        2026,
        u64::MAX,
        FoldSink::new(ProtocolSpec::THREE_PC.name()),
    )
    .expect("valid config");
    check("fold.txt", &fold.render());
}
