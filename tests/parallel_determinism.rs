//! The parallel experiment runner's two contracts, tested end to end:
//!
//! 1. **Determinism** — a sweep's results (and everything rendered from
//!    them) are byte-identical for any worker count; parallelism only
//!    changes wall-clock time.
//! 2. **Replication statistics** — independent replications of a cell
//!    never share a seed, their merged 90% confidence interval shrinks
//!    roughly as 1/√reps, and replicated sweeps agree with single-rep
//!    sweeps on the headline peak-throughput comparison.

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::{SeriesConfig, Simulation};
use distcommit::db::experiments::{self, cell_seed, Scale};
use distcommit::db::metrics::{ReportFormat, SimReport};
use distcommit::db::output::{
    render_csv, render_csv_ci, render_sweep_series_csv, render_sweep_series_json, render_table_ci,
    Metric,
};
use distcommit::db::runner;
use distcommit::proto::ProtocolSpec;
use simkernel::SimDuration;
use std::collections::HashSet;

fn small_scale() -> Scale {
    Scale {
        warmup: 30,
        measured: 250,
        mpls: vec![1, 3],
        seed: 42,
        replications: 2,
        jobs: Some(1),
    }
}

/// `--jobs 4` must be byte-identical to `--jobs 1` on a small fig1
/// grid: same numbers in every report, same rendered CSV bytes.
#[test]
fn four_jobs_bit_identical_to_one_job() {
    let mut serial_scale = small_scale();
    serial_scale.jobs = Some(1);
    let mut parallel_scale = small_scale();
    parallel_scale.jobs = Some(4);

    let serial = experiments::fig1(&serial_scale).unwrap();
    let parallel = experiments::fig1(&parallel_scale).unwrap();

    assert_eq!(serial.series.len(), parallel.series.len());
    for (a, b) in serial.series.iter().zip(&parallel.series) {
        assert_eq!(a.label, b.label);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.events, y.events, "{}", a.label);
            assert_eq!(x.committed, y.committed);
            assert_eq!(x.throughput.to_bits(), y.throughput.to_bits());
            assert_eq!(x.block_ratio.to_bits(), y.block_ratio.to_bits());
            assert_eq!(
                x.throughput_ci.half_width.to_bits(),
                y.throughput_ci.half_width.to_bits()
            );
        }
    }
    // Rendered output is the user-facing determinism guarantee.
    assert_eq!(
        render_csv(&serial, Metric::Throughput),
        render_csv(&parallel, Metric::Throughput)
    );
    assert_eq!(render_csv_ci(&serial), render_csv_ci(&parallel));
    assert_eq!(render_table_ci(&serial), render_table_ci(&parallel));
}

/// The determinism matrix: every (protocol, seed-offset, MPL) cell
/// must render byte-identical SimReport JSON whether the cell grid is
/// executed on one worker or four. This is the widest determinism
/// guarantee the repo makes — not just one figure's sweep, but the
/// exact rendered bytes across protocol families (classic 2PC, the
/// presumed-commit variant, and an OPT lending protocol), shifted
/// seeds far apart, and both load levels either side of the paper's
/// thrashing knee.
#[test]
fn report_json_matrix_identical_across_jobs_seeds_and_protocols() {
    let env_offset = std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let protocols = [
        ("2PC", ProtocolSpec::TWO_PC),
        ("PC", ProtocolSpec::PC),
        ("OPT", ProtocolSpec::OPT_2PC),
    ];
    let offsets = [0u64, 1000, 52000];
    let mpls = [2u32, 6];

    let mut cells: Vec<(usize, u64, u32)> = Vec::new();
    for pi in 0..protocols.len() {
        for &off in &offsets {
            for &mpl in &mpls {
                cells.push((pi, off, mpl));
            }
        }
    }

    let run_cell = |&(pi, off, mpl): &(usize, u64, u32)| -> String {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.mpl = mpl;
        cfg.run.warmup_transactions = 25;
        cfg.run.measured_transactions = 200;
        Simulation::run(&cfg, protocols[pi].1, 42 + off + env_offset)
            .unwrap()
            .render(ReportFormat::Json)
    };

    let serial = runner::run_ordered(&cells, 1, run_cell);
    let parallel = runner::run_ordered(&cells, 4, run_cell);

    assert_eq!(serial.len(), cells.len());
    for (i, &(pi, off, mpl)) in cells.iter().enumerate() {
        assert_eq!(
            serial[i], parallel[i],
            "JSON report diverged across --jobs for {} offset {off} mpl {mpl}",
            protocols[pi].0
        );
    }
    // Distinct cells must actually be distinct runs, or the matrix
    // would pass vacuously.
    for i in 1..cells.len() {
        assert_ne!(
            serial[0], serial[i],
            "cells 0 and {i} produced identical reports"
        );
    }
}

/// The production-scale cell of the determinism matrix: 64 sites, a
/// 4-region LAN/WAN topology with jitter and a hot site, and Zipf-
/// skewed page access. Every new Scale-dimension code path — the alias
/// sampler, the wire-latency flight events, the hot-site placement —
/// must render byte-identical SimReport JSON on one worker and four,
/// across protocols and shifted seeds.
#[test]
fn wan_zipf_64_site_matrix_identical_across_jobs() {
    let env_offset = std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let protocols = [
        ("2PC", ProtocolSpec::TWO_PC),
        ("PA", ProtocolSpec::PA),
        ("OPT", ProtocolSpec::OPT_2PC),
    ];
    let offsets = [0u64, 3000];

    let mut cells: Vec<(usize, u64)> = Vec::new();
    for pi in 0..protocols.len() {
        for &off in &offsets {
            cells.push((pi, off));
        }
    }

    let run_cell = |&(pi, off): &(usize, u64)| -> String {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.num_sites = 64;
        cfg.db_size = 64_000; // keep the paper's 1000 pages/site
        cfg.zipf = Some(distcommit::db::config::Zipf { theta: 0.9 });
        cfg.topology = Some(
            "regions=4,lan-ms=1,wan-ms=40,jitter=0.1,hot=0.1"
                .parse()
                .unwrap(),
        );
        cfg.run.warmup_transactions = 25;
        cfg.run.measured_transactions = 200;
        Simulation::run(&cfg, protocols[pi].1, 42 + off + env_offset)
            .unwrap()
            .render(ReportFormat::Json)
    };

    let serial = runner::run_ordered(&cells, 1, run_cell);
    let parallel = runner::run_ordered(&cells, 4, run_cell);

    for (i, &(pi, off)) in cells.iter().enumerate() {
        assert_eq!(
            serial[i], parallel[i],
            "WAN+Zipf JSON report diverged across --jobs for {} offset {off}",
            protocols[pi].0
        );
    }
    for i in 1..cells.len() {
        assert_ne!(serial[0], serial[i], "cells 0 and {i} identical");
    }
}

/// A writer that meters what the streaming series sink hands it: the
/// total byte count and the largest single `write` call — the sink's
/// output-side high-water mark. Streaming a run of any length must
/// hand over data window by window, never one giant buffered blob.
#[derive(Clone, Default)]
struct MeterWriter {
    total: std::sync::Arc<std::sync::atomic::AtomicU64>,
    max_chunk: std::sync::Arc<std::sync::atomic::AtomicU64>,
    writes: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl std::io::Write for MeterWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        use std::sync::atomic::Ordering::Relaxed;
        self.total.fetch_add(buf.len() as u64, Relaxed);
        self.max_chunk.fetch_max(buf.len() as u64, Relaxed);
        self.writes.fetch_add(1, Relaxed);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Million-transaction scale smoke (release-mode material, `--ignored`
/// by default): a 64-site WAN + Zipf run committing 10^6 measured
/// transactions through the streaming series path. Asserts the run
/// completes, the series streamed many windows, and the sink's
/// high-water mark stayed bounded — no write grew with run length, so
/// memory is O(window), not O(transactions).
#[test]
#[ignore = "million-transaction smoke; run with --ignored --release"]
fn million_transaction_streaming_smoke_stays_bounded() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.num_sites = 64;
    cfg.db_size = 64_000;
    cfg.zipf = Some(distcommit::db::config::Zipf { theta: 0.9 });
    cfg.topology = Some("regions=4,lan-ms=1,wan-ms=40,jitter=0.1".parse().unwrap());
    cfg.run.warmup_transactions = 1_000;
    cfg.run.measured_transactions = 1_000_000;
    // The default safety cap (40 000 sim-seconds) is sized for the
    // paper's 5 000-commit runs; a million commits legitimately need
    // more simulated time.
    cfg.run.max_sim_time = None;
    let series_cfg = SeriesConfig {
        window: SimDuration::from_secs(5),
        per_site: false,
    };
    let meter = MeterWriter::default();
    let report = Simulation::run_with_series_stream(
        &cfg,
        ProtocolSpec::TWO_PC,
        42,
        &series_cfg,
        Box::new(meter.clone()),
        distcommit::db::engine::SeriesFormat::Csv,
    )
    .unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(report.committed, 1_000_000);
    let total = meter.total.load(Relaxed);
    let max_chunk = meter.max_chunk.load(Relaxed);
    let writes = meter.writes.load(Relaxed);
    assert!(writes > 100, "expected many window writes, got {writes}");
    assert!(total > 10_000, "series output suspiciously small: {total}");
    // The high-water mark: no single hand-off approaches the total —
    // the sink held at most one window's rendering at a time.
    assert!(
        max_chunk < 64 * 1024,
        "single write of {max_chunk} bytes suggests buffering"
    );
}

/// The windowed-series side of a sweep obeys the same contract as the
/// reports: `--jobs 4` renders byte-identical sweep-series CSV and
/// JSON to `--jobs 1`, across the shifted-seed matrix CI runs
/// (`DISTCOMMIT_TEST_SEED_OFFSET`). Series windows are accumulated
/// inside each cell's event loop, so this pins down that worker
/// scheduling can't leak into window boundaries or counter deltas.
#[test]
fn sweep_series_bytes_identical_across_jobs_and_seed_offsets() {
    let env_offset = std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let cfg = SystemConfig::paper_baseline();
    let specs = vec![
        ("2PC".to_string(), ProtocolSpec::TWO_PC, cfg.clone()),
        ("OPT".to_string(), ProtocolSpec::OPT_2PC, cfg.clone()),
    ];
    let series_cfg = SeriesConfig {
        window: SimDuration::from_secs(3),
        per_site: true,
    };
    for off in [0u64, 7000] {
        let scale = |jobs| Scale {
            warmup: 25,
            measured: 220,
            mpls: vec![2, 5],
            seed: 42 + off + env_offset,
            replications: 2,
            jobs: Some(jobs),
        };
        let (_, serial) =
            experiments::sweep_with_series(&cfg, &specs, &scale(1), &series_cfg).unwrap();
        let (_, parallel) =
            experiments::sweep_with_series(&cfg, &specs, &scale(4), &series_cfg).unwrap();

        // 2 protocols x 2 MPLs x 2 replications.
        assert_eq!(serial.len(), 8);
        let csv1 = render_sweep_series_csv(&serial);
        let csv4 = render_sweep_series_csv(&parallel);
        assert_eq!(csv1, csv4, "sweep-series CSV diverged at offset {off}");
        let json1 = render_sweep_series_json(&serial);
        let json4 = render_sweep_series_json(&parallel);
        assert_eq!(json1, json4, "sweep-series JSON diverged at offset {off}");

        // Not vacuous: every cell recorded windows, and distinct cells
        // produced distinct window streams.
        assert!(serial.iter().all(|c| !c.series.windows.is_empty()));
        let rendered: HashSet<String> = serial
            .iter()
            .map(|c| c.series.render(distcommit::db::engine::SeriesFormat::Csv))
            .collect();
        assert_eq!(rendered.len(), serial.len(), "duplicate cell series");
    }
}

/// An absurd worker count (more workers than jobs) is also identical.
#[test]
fn oversubscribed_workers_change_nothing() {
    let inputs: Vec<u64> = (0..7).collect();
    let a = runner::run_ordered(&inputs, 1, |&x| x * 3);
    let b = runner::run_ordered(&inputs, 64, |&x| x * 3);
    assert_eq!(a, b);
}

/// Per-cell seeds never collide across the full (protocol, MPL, rep)
/// grid, for several base seeds — replications are truly independent.
#[test]
fn cell_seeds_are_collision_free() {
    for base in [0u64, 42, u64::MAX, 0xDEAD_BEEF] {
        let mut seen = HashSet::new();
        for series in 0..12 {
            for mpl_index in 0..10 {
                for rep in 0..16 {
                    assert!(
                        seen.insert(cell_seed(base, series, mpl_index, rep)),
                        "collision at base={base} ({series}, {mpl_index}, {rep})"
                    );
                }
            }
        }
    }
}

fn merged_cell(reps: u32) -> SimReport {
    let reports: Vec<SimReport> = (0..reps)
        .map(|rep| {
            let mut cfg = SystemConfig::paper_baseline();
            cfg.mpl = 4;
            cfg.run.warmup_transactions = 50;
            cfg.run.measured_transactions = 600;
            Simulation::run(&cfg, ProtocolSpec::TWO_PC, cell_seed(42, 0, 0, rep)).unwrap()
        })
        .collect();
    SimReport::merge_replications(&reports)
}

/// The merged 90% CI half-width shrinks roughly as 1/√reps: quadrupling
/// the replications (4 → 16) should roughly halve the half-width
/// (the t-critical factor shrinks it a bit further; the sampled
/// standard deviation wobbles it either way).
#[test]
fn ci_half_width_shrinks_with_replications() {
    let r4 = merged_cell(4);
    let r16 = merged_cell(16);
    assert_eq!(r4.throughput_ci.batches, 4);
    assert_eq!(r16.throughput_ci.batches, 16);
    assert!(r4.throughput_ci.half_width > 0.0);
    let ratio = r16.throughput_ci.half_width / r4.throughput_ci.half_width;
    assert!(
        (0.2..0.8).contains(&ratio),
        "expected ~0.5x shrink from 4 to 16 reps, got {ratio:.3} \
         (hw4 {:.4}, hw16 {:.4})",
        r4.throughput_ci.half_width,
        r16.throughput_ci.half_width
    );
    // Both estimates agree on the underlying mean.
    let diff = (r4.throughput - r16.throughput).abs();
    assert!(diff < r4.throughput_ci.half_width + r16.throughput_ci.half_width);
}

/// Replicated sweeps tell the same headline story as single-rep sweeps:
/// the peak sits at the same MPL and the peak throughput agrees within
/// the statistical noise of short runs.
#[test]
fn replicated_peaks_agree_with_single_rep() {
    let cfg = SystemConfig::paper_baseline();
    let specs = vec![("2PC".to_string(), ProtocolSpec::TWO_PC, cfg.clone())];
    // A coarse MPL axis (1, 4, 10) where the paper baseline's peak at
    // the knee (MPL ≈ 4) is unambiguous.
    let mut scale = Scale {
        warmup: 40,
        measured: 400,
        mpls: vec![1, 4, 10],
        seed: 42,
        replications: 1,
        jobs: None,
    };
    let single = experiments::sweep(&cfg, &specs, &scale).unwrap();
    scale.replications = 3;
    let replicated = experiments::sweep(&cfg, &specs, &scale).unwrap();

    let s = &single[0];
    let r = &replicated[0];
    assert_eq!(s.peak_mpl(), 4);
    assert_eq!(r.peak_mpl(), 4);
    let rel = (s.peak_throughput() - r.peak_throughput()).abs() / s.peak_throughput();
    assert!(
        rel < 0.15,
        "replicated peak {:.2} vs single-rep peak {:.2} ({rel:.3} apart)",
        r.peak_throughput(),
        s.peak_throughput()
    );
    // The replicated sweep carries a real cross-replication interval.
    assert!(r.points.iter().all(|p| p.throughput_ci.batches == 3));
}
