//! The parallel experiment runner's two contracts, tested end to end:
//!
//! 1. **Determinism** — a sweep's results (and everything rendered from
//!    them) are byte-identical for any worker count; parallelism only
//!    changes wall-clock time.
//! 2. **Replication statistics** — independent replications of a cell
//!    never share a seed, their merged 90% confidence interval shrinks
//!    roughly as 1/√reps, and replicated sweeps agree with single-rep
//!    sweeps on the headline peak-throughput comparison.

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::{SeriesConfig, Simulation};
use distcommit::db::experiments::{self, cell_seed, Scale};
use distcommit::db::metrics::{ReportFormat, SimReport};
use distcommit::db::output::{
    render_csv, render_csv_ci, render_sweep_series_csv, render_sweep_series_json, render_table_ci,
    Metric,
};
use distcommit::db::runner;
use distcommit::proto::ProtocolSpec;
use simkernel::SimDuration;
use std::collections::HashSet;

fn small_scale() -> Scale {
    Scale {
        warmup: 30,
        measured: 250,
        mpls: vec![1, 3],
        seed: 42,
        replications: 2,
        jobs: Some(1),
    }
}

/// `--jobs 4` must be byte-identical to `--jobs 1` on a small fig1
/// grid: same numbers in every report, same rendered CSV bytes.
#[test]
fn four_jobs_bit_identical_to_one_job() {
    let mut serial_scale = small_scale();
    serial_scale.jobs = Some(1);
    let mut parallel_scale = small_scale();
    parallel_scale.jobs = Some(4);

    let serial = experiments::fig1(&serial_scale).unwrap();
    let parallel = experiments::fig1(&parallel_scale).unwrap();

    assert_eq!(serial.series.len(), parallel.series.len());
    for (a, b) in serial.series.iter().zip(&parallel.series) {
        assert_eq!(a.label, b.label);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.events, y.events, "{}", a.label);
            assert_eq!(x.committed, y.committed);
            assert_eq!(x.throughput.to_bits(), y.throughput.to_bits());
            assert_eq!(x.block_ratio.to_bits(), y.block_ratio.to_bits());
            assert_eq!(
                x.throughput_ci.half_width.to_bits(),
                y.throughput_ci.half_width.to_bits()
            );
        }
    }
    // Rendered output is the user-facing determinism guarantee.
    assert_eq!(
        render_csv(&serial, Metric::Throughput),
        render_csv(&parallel, Metric::Throughput)
    );
    assert_eq!(render_csv_ci(&serial), render_csv_ci(&parallel));
    assert_eq!(render_table_ci(&serial), render_table_ci(&parallel));
}

/// The determinism matrix: every (protocol, seed-offset, MPL) cell
/// must render byte-identical SimReport JSON whether the cell grid is
/// executed on one worker or four. This is the widest determinism
/// guarantee the repo makes — not just one figure's sweep, but the
/// exact rendered bytes across protocol families (classic 2PC, the
/// presumed-commit variant, and an OPT lending protocol), shifted
/// seeds far apart, and both load levels either side of the paper's
/// thrashing knee.
#[test]
fn report_json_matrix_identical_across_jobs_seeds_and_protocols() {
    let env_offset = std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let protocols = [
        ("2PC", ProtocolSpec::TWO_PC),
        ("PC", ProtocolSpec::PC),
        ("OPT", ProtocolSpec::OPT_2PC),
    ];
    let offsets = [0u64, 1000, 52000];
    let mpls = [2u32, 6];

    let mut cells: Vec<(usize, u64, u32)> = Vec::new();
    for pi in 0..protocols.len() {
        for &off in &offsets {
            for &mpl in &mpls {
                cells.push((pi, off, mpl));
            }
        }
    }

    let run_cell = |&(pi, off, mpl): &(usize, u64, u32)| -> String {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.mpl = mpl;
        cfg.run.warmup_transactions = 25;
        cfg.run.measured_transactions = 200;
        Simulation::run(&cfg, protocols[pi].1, 42 + off + env_offset)
            .unwrap()
            .render(ReportFormat::Json)
    };

    let serial = runner::run_ordered(&cells, 1, run_cell);
    let parallel = runner::run_ordered(&cells, 4, run_cell);

    assert_eq!(serial.len(), cells.len());
    for (i, &(pi, off, mpl)) in cells.iter().enumerate() {
        assert_eq!(
            serial[i], parallel[i],
            "JSON report diverged across --jobs for {} offset {off} mpl {mpl}",
            protocols[pi].0
        );
    }
    // Distinct cells must actually be distinct runs, or the matrix
    // would pass vacuously.
    for i in 1..cells.len() {
        assert_ne!(
            serial[0], serial[i],
            "cells 0 and {i} produced identical reports"
        );
    }
}

/// The windowed-series side of a sweep obeys the same contract as the
/// reports: `--jobs 4` renders byte-identical sweep-series CSV and
/// JSON to `--jobs 1`, across the shifted-seed matrix CI runs
/// (`DISTCOMMIT_TEST_SEED_OFFSET`). Series windows are accumulated
/// inside each cell's event loop, so this pins down that worker
/// scheduling can't leak into window boundaries or counter deltas.
#[test]
fn sweep_series_bytes_identical_across_jobs_and_seed_offsets() {
    let env_offset = std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let cfg = SystemConfig::paper_baseline();
    let specs = vec![
        ("2PC".to_string(), ProtocolSpec::TWO_PC, cfg.clone()),
        ("OPT".to_string(), ProtocolSpec::OPT_2PC, cfg.clone()),
    ];
    let series_cfg = SeriesConfig {
        window: SimDuration::from_secs(3),
        per_site: true,
    };
    for off in [0u64, 7000] {
        let scale = |jobs| Scale {
            warmup: 25,
            measured: 220,
            mpls: vec![2, 5],
            seed: 42 + off + env_offset,
            replications: 2,
            jobs: Some(jobs),
        };
        let (_, serial) =
            experiments::sweep_with_series(&cfg, &specs, &scale(1), &series_cfg).unwrap();
        let (_, parallel) =
            experiments::sweep_with_series(&cfg, &specs, &scale(4), &series_cfg).unwrap();

        // 2 protocols x 2 MPLs x 2 replications.
        assert_eq!(serial.len(), 8);
        let csv1 = render_sweep_series_csv(&serial);
        let csv4 = render_sweep_series_csv(&parallel);
        assert_eq!(csv1, csv4, "sweep-series CSV diverged at offset {off}");
        let json1 = render_sweep_series_json(&serial);
        let json4 = render_sweep_series_json(&parallel);
        assert_eq!(json1, json4, "sweep-series JSON diverged at offset {off}");

        // Not vacuous: every cell recorded windows, and distinct cells
        // produced distinct window streams.
        assert!(serial.iter().all(|c| !c.series.windows.is_empty()));
        let rendered: HashSet<String> = serial
            .iter()
            .map(|c| c.series.render(distcommit::db::engine::SeriesFormat::Csv))
            .collect();
        assert_eq!(rendered.len(), serial.len(), "duplicate cell series");
    }
}

/// An absurd worker count (more workers than jobs) is also identical.
#[test]
fn oversubscribed_workers_change_nothing() {
    let inputs: Vec<u64> = (0..7).collect();
    let a = runner::run_ordered(&inputs, 1, |&x| x * 3);
    let b = runner::run_ordered(&inputs, 64, |&x| x * 3);
    assert_eq!(a, b);
}

/// Per-cell seeds never collide across the full (protocol, MPL, rep)
/// grid, for several base seeds — replications are truly independent.
#[test]
fn cell_seeds_are_collision_free() {
    for base in [0u64, 42, u64::MAX, 0xDEAD_BEEF] {
        let mut seen = HashSet::new();
        for series in 0..12 {
            for mpl_index in 0..10 {
                for rep in 0..16 {
                    assert!(
                        seen.insert(cell_seed(base, series, mpl_index, rep)),
                        "collision at base={base} ({series}, {mpl_index}, {rep})"
                    );
                }
            }
        }
    }
}

fn merged_cell(reps: u32) -> SimReport {
    let reports: Vec<SimReport> = (0..reps)
        .map(|rep| {
            let mut cfg = SystemConfig::paper_baseline();
            cfg.mpl = 4;
            cfg.run.warmup_transactions = 50;
            cfg.run.measured_transactions = 600;
            Simulation::run(&cfg, ProtocolSpec::TWO_PC, cell_seed(42, 0, 0, rep)).unwrap()
        })
        .collect();
    SimReport::merge_replications(&reports)
}

/// The merged 90% CI half-width shrinks roughly as 1/√reps: quadrupling
/// the replications (4 → 16) should roughly halve the half-width
/// (the t-critical factor shrinks it a bit further; the sampled
/// standard deviation wobbles it either way).
#[test]
fn ci_half_width_shrinks_with_replications() {
    let r4 = merged_cell(4);
    let r16 = merged_cell(16);
    assert_eq!(r4.throughput_ci.batches, 4);
    assert_eq!(r16.throughput_ci.batches, 16);
    assert!(r4.throughput_ci.half_width > 0.0);
    let ratio = r16.throughput_ci.half_width / r4.throughput_ci.half_width;
    assert!(
        (0.2..0.8).contains(&ratio),
        "expected ~0.5x shrink from 4 to 16 reps, got {ratio:.3} \
         (hw4 {:.4}, hw16 {:.4})",
        r4.throughput_ci.half_width,
        r16.throughput_ci.half_width
    );
    // Both estimates agree on the underlying mean.
    let diff = (r4.throughput - r16.throughput).abs();
    assert!(diff < r4.throughput_ci.half_width + r16.throughput_ci.half_width);
}

/// Replicated sweeps tell the same headline story as single-rep sweeps:
/// the peak sits at the same MPL and the peak throughput agrees within
/// the statistical noise of short runs.
#[test]
fn replicated_peaks_agree_with_single_rep() {
    let cfg = SystemConfig::paper_baseline();
    let specs = vec![("2PC".to_string(), ProtocolSpec::TWO_PC, cfg.clone())];
    // A coarse MPL axis (1, 4, 10) where the paper baseline's peak at
    // the knee (MPL ≈ 4) is unambiguous.
    let mut scale = Scale {
        warmup: 40,
        measured: 400,
        mpls: vec![1, 4, 10],
        seed: 42,
        replications: 1,
        jobs: None,
    };
    let single = experiments::sweep(&cfg, &specs, &scale).unwrap();
    scale.replications = 3;
    let replicated = experiments::sweep(&cfg, &specs, &scale).unwrap();

    let s = &single[0];
    let r = &replicated[0];
    assert_eq!(s.peak_mpl(), 4);
    assert_eq!(r.peak_mpl(), 4);
    let rel = (s.peak_throughput() - r.peak_throughput()).abs() / s.peak_throughput();
    assert!(
        rel < 0.15,
        "replicated peak {:.2} vs single-rep peak {:.2} ({rel:.3} apart)",
        r.peak_throughput(),
        s.peak_throughput()
    );
    // The replicated sweep carries a real cross-replication interval.
    assert!(r.points.iter().all(|p| p.throughput_ci.batches == 3));
}
