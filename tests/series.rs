//! Windowed time-series telemetry: exact aggregation against the
//! report, non-perturbation of the observed run, determinism, and the
//! buffered/streaming equivalence of the renderers.

use std::io::Write;
use std::sync::{Arc, Mutex};

use distcommit::db::config::{FailureConfig, SystemConfig};
use distcommit::db::engine::{Series, SeriesConfig, SeriesFormat, Simulation};
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;
use simkernel::SimDuration;

fn small_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 4;
    cfg.run.warmup_transactions = 100;
    cfg.run.measured_transactions = 800;
    cfg
}

fn lossy_cfg() -> SystemConfig {
    let mut cfg = small_cfg();
    cfg.failures = Some(FailureConfig {
        msg_loss_prob: 0.05,
        ..FailureConfig::default()
    });
    cfg
}

fn series_cfg(window_s: u64, per_site: bool) -> SeriesConfig {
    SeriesConfig {
        window: SimDuration::from_secs(window_s),
        per_site,
    }
}

fn fingerprint(r: &SimReport) -> (u64, u64, u64, u64, String) {
    (
        r.committed,
        r.aborted_deadlock,
        r.aborted_surprise,
        r.events,
        format!(
            "{:.12}|{:.12}|{:.12}|{:.12}",
            r.throughput, r.mean_response_s, r.block_ratio, r.sim_seconds
        ),
    )
}

/// Measured windows must tile the measurement interval exactly, so
/// their counter deltas sum to the report aggregates with no slack at
/// all — the acceptance criterion of the telemetry layer.
#[test]
fn measured_windows_sum_exactly_to_report_aggregates() {
    for (cfg, spec) in [
        (small_cfg(), ProtocolSpec::TWO_PC),
        (small_cfg(), ProtocolSpec::OPT_3PC),
        (lossy_cfg(), ProtocolSpec::TWO_PC),
    ] {
        let scfg = series_cfg(2, false);
        let (report, series) = Simulation::run_with_series(&cfg, spec, 42, &scfg).unwrap();
        let measured: Vec<_> = series.windows.iter().filter(|w| w.measured).collect();
        assert!(
            measured.len() >= 2,
            "{}: expected several measured windows, got {}",
            spec.name(),
            measured.len()
        );

        macro_rules! sum {
            ($field:ident) => {
                measured.iter().map(|w| w.$field).sum::<u64>()
            };
        }
        assert_eq!(sum!(committed), report.committed, "{}", spec.name());
        assert_eq!(sum!(aborted_deadlock), report.aborted_deadlock);
        assert_eq!(sum!(aborted_surprise), report.aborted_surprise);
        assert_eq!(sum!(aborted_borrower), report.aborted_borrower);
        assert_eq!(sum!(retransmissions), report.faults.retransmissions);
        assert_eq!(sum!(messages_lost), report.faults.messages_lost);

        // Message counters reconstruct the per-commit ratios.
        let exec: u64 = sum!(exec_messages);
        let commit: u64 = sum!(commit_messages);
        let c = report.committed as f64;
        assert!((exec as f64 - report.exec_messages_per_commit * c).abs() < 1e-6 * c + 1e-6);
        assert!((commit as f64 - report.commit_messages_per_commit * c).abs() < 1e-6 * c + 1e-6);

        // Integrals telescope: the summed lock-wait and live areas
        // reproduce the report's block ratio to floating-point noise.
        let lock_wait: f64 = measured.iter().map(|w| w.lock_wait_s).sum();
        let live: f64 = measured.iter().map(|w| w.live_s).sum();
        assert!(live > 0.0);
        let ratio = lock_wait / live;
        assert!(
            (ratio - report.block_ratio).abs() < 1e-9,
            "{}: series block ratio {ratio} vs report {}",
            spec.name(),
            report.block_ratio
        );

        // The width-weighted window throughput is the report throughput.
        let width: f64 = measured.iter().map(|w| w.width_s()).sum();
        assert!((width - report.sim_seconds).abs() < 1e-9);
        let thr = report.committed as f64 / width;
        assert!((thr - report.throughput).abs() < 1e-9 * report.throughput.max(1.0));
    }
}

#[test]
fn windows_tile_without_gaps_and_timestamps_are_monotone() {
    let (_, series) =
        Simulation::run_with_series(&small_cfg(), ProtocolSpec::TWO_PC, 7, &series_cfg(2, false))
            .unwrap();
    assert!(!series.windows.is_empty());
    for pair in series.windows.windows(2) {
        assert!(pair[0].start < pair[0].end);
        assert_eq!(
            pair[0].end, pair[1].start,
            "windows must tile with no gap or overlap"
        );
        assert_eq!(pair[0].index + 1, pair[1].index);
    }
    // Warm-up windows precede measured windows, never the reverse.
    let first_measured = series.windows.iter().position(|w| w.measured).unwrap();
    assert!(series.windows[..first_measured].iter().all(|w| !w.measured));
    assert!(series.windows[first_measured..].iter().all(|w| w.measured));
}

/// Observing a run must not perturb it: the report from a series run
/// is identical to a plain run with the same inputs.
#[test]
fn series_recording_does_not_perturb_the_run() {
    for cfg in [small_cfg(), lossy_cfg()] {
        let plain = Simulation::run(&cfg, ProtocolSpec::THREE_PC, 11).unwrap();
        let (with_series, _) =
            Simulation::run_with_series(&cfg, ProtocolSpec::THREE_PC, 11, &series_cfg(1, true))
                .unwrap();
        assert_eq!(fingerprint(&plain), fingerprint(&with_series));
    }
}

#[test]
fn per_site_commits_sum_to_window_commits() {
    let (_, series) =
        Simulation::run_with_series(&small_cfg(), ProtocolSpec::TWO_PC, 5, &series_cfg(2, true))
            .unwrap();
    let mut some_site_committed = false;
    for w in &series.windows {
        assert!(!w.per_site.is_empty(), "per-site mode records every site");
        let site_sum: u64 = w.per_site.iter().map(|s| s.committed).sum();
        assert_eq!(site_sum, w.committed, "window {} site split", w.index);
        some_site_committed |= site_sum > 0;
    }
    assert!(some_site_committed);
}

#[test]
fn series_render_is_deterministic() {
    let run = || -> (Series, Series) {
        let (_, a) = Simulation::run_with_series(
            &lossy_cfg(),
            ProtocolSpec::TWO_PC,
            99,
            &series_cfg(2, true),
        )
        .unwrap();
        let (_, b) = Simulation::run_with_series(
            &lossy_cfg(),
            ProtocolSpec::TWO_PC,
            99,
            &series_cfg(2, true),
        )
        .unwrap();
        (a, b)
    };
    let (a, b) = run();
    assert_eq!(a.render(SeriesFormat::Csv), b.render(SeriesFormat::Csv));
    assert_eq!(a.render(SeriesFormat::Json), b.render(SeriesFormat::Json));
}

/// A `Write` handle whose bytes stay reachable after the engine takes
/// ownership of the boxed writer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn streaming_output_is_byte_identical_to_buffered_render() {
    for format in [SeriesFormat::Csv, SeriesFormat::Json] {
        let scfg = series_cfg(2, true);
        let (_, buffered) =
            Simulation::run_with_series(&lossy_cfg(), ProtocolSpec::OPT_2PC, 3, &scfg).unwrap();
        let buf = SharedBuf::default();
        let report = Simulation::run_with_series_stream(
            &lossy_cfg(),
            ProtocolSpec::OPT_2PC,
            3,
            &scfg,
            Box::new(buf.clone()),
            format,
        )
        .unwrap();
        assert!(report.committed > 0);
        let streamed = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(buffered.render(format), streamed);
    }
}

#[test]
fn json_series_is_structurally_sound() {
    let (_, series) =
        Simulation::run_with_series(&lossy_cfg(), ProtocolSpec::TWO_PC, 21, &series_cfg(2, true))
            .unwrap();
    let json = series.render(SeriesFormat::Json);
    let balance = json.chars().fold(0i64, |acc, c| match c {
        '{' | '[' => acc + 1,
        '}' | ']' => acc - 1,
        _ => acc,
    });
    assert_eq!(balance, 0, "unbalanced braces/brackets");
    assert!(json.contains("\"windows\":["));
    assert!(json.contains("\"sites\":["));
    assert!(!json.contains("inf") && !json.contains("NaN"));
}

#[test]
fn csv_rows_all_have_the_header_field_count() {
    let (_, series) =
        Simulation::run_with_series(&small_cfg(), ProtocolSpec::TWO_PC, 8, &series_cfg(2, true))
            .unwrap();
    let csv = series.render(SeriesFormat::Csv);
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    let fields = header.split(',').count();
    for line in lines {
        assert_eq!(
            line.split(',').count(),
            fields,
            "row field count diverges from header: {line:?}"
        );
    }
}

/// Steady-state detection must flag a deliberately too-short run: with
/// fewer throughput samples than the MSER minimum, `converged` is
/// structurally false regardless of seed.
#[test]
fn too_short_run_is_flagged_not_converged() {
    let mut cfg = small_cfg();
    cfg.run.warmup_transactions = 0;
    cfg.run.measured_transactions = 50;
    // 5 batches of 10 commits → 5 throughput samples, below the MSER
    // minimum of 8, so the verdict is structural (seed-independent).
    cfg.run.batches = 5;
    let report = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 1).unwrap();
    assert!(!report.convergence.converged);
    assert!(report.convergence.steady_from_s.is_nan());
    assert!(report.summary().contains("NOT CONVERGED"));
}

/// A default-length run yields enough batches for the detector to
/// find a steady state.
#[test]
fn default_length_run_converges() {
    let report = Simulation::run(&small_cfg(), ProtocolSpec::TWO_PC, 1).unwrap();
    assert!(
        report.convergence.samples >= 8,
        "expected enough samples, got {}",
        report.convergence.samples
    );
    assert!(report.convergence.converged);
    assert!(report.convergence.steady_from_s.is_finite());
}
