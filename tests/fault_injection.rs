//! The generalized fault-injection subsystem: cohort crashes with
//! recovery-log replay, message loss with timeout/retransmission, and
//! the per-protocol fault counters that make every fault schedule
//! observable and replayable from a seed.
//!
//! The headline result locked in here is the quantitative form of the
//! paper's §2.4 blocking argument: the time prepared cohorts spend
//! blocked behind a crashed master grows with the crash probability
//! under 2PC (they wait out the full recovery), while under 3PC it
//! stays bounded by the detection timeout plus a short termination
//! protocol.

use distcommit::db::config::{FailureConfig, SystemConfig};
use distcommit::db::engine::{Simulation, TraceEvent};
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;

fn base_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 4;
    cfg.run.warmup_transactions = 100;
    cfg.run.measured_transactions = 1_000;
    cfg
}

fn faulty_cfg(mc: f64, cc: f64, loss: f64) -> SystemConfig {
    let mut cfg = base_cfg();
    cfg.failures = Some(FailureConfig {
        master_crash_prob: mc,
        cohort_crash_prob: cc,
        msg_loss_prob: loss,
        ..FailureConfig::default()
    });
    cfg
}

/// CI's failure matrix re-runs this suite under shifted seeds
/// (`DISTCOMMIT_TEST_SEED_OFFSET`); every assertion here is structural
/// and must hold for any seed.
fn seed_offset() -> u64 {
    std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn run(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> SimReport {
    Simulation::run(cfg, spec, seed + seed_offset()).expect("valid config")
}

/// Identical seeds replay the identical fault schedule: every counter,
/// including the blocked-time mean, is byte-equal across runs.
#[test]
fn fault_schedules_replay_byte_identically_from_a_seed() {
    let cfg = faulty_cfg(0.02, 0.01, 0.02);
    for spec in [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_3PC,
    ] {
        let a = run(&cfg, spec, 17);
        let b = run(&cfg, spec, 17);
        assert_eq!(a.events, b.events, "{}", spec.name());
        assert_eq!(a.faults, b.faults, "{}", spec.name());
        assert_eq!(
            a.faults.mean_blocked_on_crash_s.to_bits(),
            b.faults.mean_blocked_on_crash_s.to_bits()
        );
        // The faults actually fired — this is not a vacuous comparison.
        assert!(a.faults.master_crashes > 0, "{}", spec.name());
        assert!(a.faults.cohort_crashes > 0, "{}", spec.name());
        assert!(a.faults.messages_lost > 0, "{}", spec.name());
    }
}

/// §2.4, quantified: at the same crash probability a prepared 2PC
/// cohort blocks for the whole master recovery (5 s), while a 3PC
/// cohort detects the crash in 300 ms and terminates on its own.
#[test]
fn blocked_time_under_2pc_dwarfs_3pc_and_3pc_is_bounded() {
    let cfg = faulty_cfg(0.05, 0.0, 0.0);
    let two_pc = run(&cfg, ProtocolSpec::TWO_PC, 9);
    let three_pc = run(&cfg, ProtocolSpec::THREE_PC, 9);

    assert!(two_pc.faults.blocked_on_crash_cohorts > 0);
    assert!(three_pc.faults.blocked_on_crash_cohorts > 0);

    // Blocking protocol: every crash strands its prepared cohorts for
    // the full recovery_time, so the mean sits at (or just above) 5 s.
    assert!(
        two_pc.faults.mean_blocked_on_crash_s > 4.5,
        "2PC blocked {:.3}s, expected ≈ recovery_time (5s)",
        two_pc.faults.mean_blocked_on_crash_s
    );
    // Non-blocking protocol: bounded by detection_timeout (300 ms)
    // plus the termination protocol's few message rounds.
    assert!(
        three_pc.faults.mean_blocked_on_crash_s < 1.5,
        "3PC blocked {:.3}s, expected ≲ detection_timeout + termination",
        three_pc.faults.mean_blocked_on_crash_s
    );
    assert!(
        two_pc.faults.mean_blocked_on_crash_s > 3.0 * three_pc.faults.mean_blocked_on_crash_s,
        "2PC ({:.3}s) vs 3PC ({:.3}s)",
        two_pc.faults.mean_blocked_on_crash_s,
        three_pc.faults.mean_blocked_on_crash_s
    );
    // Only 3PC runs the termination protocol; 2PC waits.
    assert!(three_pc.faults.termination_rounds > 0);
    assert_eq!(two_pc.faults.termination_rounds, 0);
}

/// Satellite property check: per protocol, the fault counters are
/// monotone in the configured master-crash probability (summed over
/// seeds to wash out per-seed noise), and exactly zero without a
/// failure config — where the Tables 3–4 overhead cross-check also
/// stays exact.
#[test]
fn fault_counters_monotone_in_crash_probability_and_zero_without_faults() {
    for spec in [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
    ] {
        let mut prev_crashes = 0u64;
        let mut prev_blocked = 0u64;
        for (i, &p) in [0.005, 0.02, 0.08].iter().enumerate() {
            let cfg = faulty_cfg(p, 0.0, 0.0);
            let mut crashes = 0u64;
            let mut blocked = 0u64;
            for seed in 1..=3 {
                let r = run(&cfg, spec, seed);
                crashes += r.faults.master_crashes;
                blocked += r.faults.blocked_on_crash_cohorts;
            }
            assert!(
                crashes > prev_crashes || i == 0,
                "{}: crashes not monotone at p={p} ({crashes} vs {prev_crashes})",
                spec.name()
            );
            assert!(
                blocked >= prev_blocked,
                "{}: blocked cohorts not monotone at p={p}",
                spec.name()
            );
            prev_crashes = crashes;
            prev_blocked = blocked;
        }

        // failures: None ⇒ the fault paths are never entered and the
        // per-commit overhead model check is exact.
        let clean = run(&base_cfg(), spec, 1);
        assert!(
            clean.faults.is_quiet(),
            "{}: {:?}",
            spec.name(),
            clean.faults
        );
        assert!(clean.overhead_check.checked_commits > 0);
        assert!(
            clean.overhead_check.is_clean(),
            "{}: overhead mismatch {:?}",
            spec.name(),
            clean.overhead_check
        );
    }
}

/// A cohort that crashes right after forcing its prepare record comes
/// back, replays the log, and resends its vote — the transaction still
/// commits, stalled by the cohort recovery time.
#[test]
fn cohort_crash_replays_log_and_rejoins() {
    let mut cfg = faulty_cfg(0.0, 1.0, 0.0);
    // Pin the crash to the replay points: with the execution-phase
    // window also at 1.0 no transaction would ever reach PREPARE.
    cfg.failures.as_mut().unwrap().exec_crash_prob = Some(0.0);
    cfg.db_size = 80_000; // conflict-free
    cfg.mpl = 1;
    cfg.run.warmup_transactions = 0;
    cfg.run.measured_transactions = 10;
    for spec in [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::THREE_PC,
    ] {
        let (report, tr) = Simulation::run_traced(&cfg, spec, 21 + seed_offset(), 3).unwrap();
        assert!(report.faults.cohort_crashes > 0, "{}", spec.name());
        assert_eq!(
            report.committed,
            10,
            "{}: crashes must not lose txns",
            spec.name()
        );
        // Every cohort crashed once at the prepare point, so the run
        // stalls by at least the 1 s cohort recovery time per txn.
        assert!(
            report.mean_response_s > 1.0,
            "{}: got {:.2}s",
            spec.name(),
            report.mean_response_s
        );
        let crashed: Vec<(u64, u64)> = tr
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CohortCrashed { txn, cohort, .. } => Some((*txn, *cohort)),
                _ => None,
            })
            .collect();
        assert!(!crashed.is_empty(), "{}", spec.name());
        // Each crash has a matching recovery, and the txn still decided
        // commit.
        for &(txn, cohort) in &crashed {
            assert!(
                tr.events.iter().any(|e| matches!(e,
                    TraceEvent::CohortRecovered { txn: t, cohort: c, .. }
                        if *t == txn && *c == cohort)),
                "{}: cohort {cohort} never recovered",
                spec.name()
            );
            assert!(
                tr.events.iter().any(|e| matches!(e,
                    TraceEvent::Decided { txn: t, commit: true, .. } if *t == txn)),
                "{}: txn {txn} never committed",
                spec.name()
            );
        }
        // The readable timeline mentions the choreography.
        let text = tr.render_txn(crashed[0].0);
        assert!(text.contains("CRASHED"), "{}:\n{text}", spec.name());
        assert!(text.contains("recovered"), "{}:\n{text}", spec.name());
    }
}

/// 3PC's second crash point: a cohort that crashes after forcing its
/// precommit record recovers and resends the PreAck.
#[test]
fn precommitted_cohort_crash_resends_preack() {
    let mut cfg = faulty_cfg(0.0, 1.0, 0.0);
    cfg.failures.as_mut().unwrap().exec_crash_prob = Some(0.0);
    cfg.db_size = 80_000;
    cfg.mpl = 1;
    cfg.run.warmup_transactions = 0;
    cfg.run.measured_transactions = 5;
    let (report, tr) =
        Simulation::run_traced(&cfg, ProtocolSpec::THREE_PC, 22 + seed_offset(), 2).unwrap();
    assert_eq!(report.committed, 5);
    // With cc = 1.0 a 3PC cohort crashes at both forced-record points:
    // prepare and precommit. dist_degree cohorts × 2 points × ≥ 5 txns.
    assert!(
        report.faults.cohort_crashes >= 2 * report.committed,
        "expected crashes at both replay points, got {}",
        report.faults.cohort_crashes
    );
    // Both crash points appear on the same transaction's timeline.
    let txn = 1;
    let crashes = tr
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::CohortCrashed { txn: t, .. } if *t == txn))
        .count();
    assert!(crashes >= 2, "timeline shows {crashes} crash(es)");
}

/// The execution-phase crash window: a cohort that dies before its
/// WORKDONE leaves has nothing on stable storage, so recovery presumes
/// abort and the transaction restarts — visible as `aborted_crash` in
/// the report. No transaction is ever lost, and the observed rate at
/// the new trial site tracks the configured probability exactly
/// (`exec-cc` isolates the window: cc = 0 means the replay points
/// never roll, so every trial in the counter is an execution-phase
/// trial).
#[test]
fn exec_phase_crash_presumes_abort_and_restarts() {
    let mut cfg = faulty_cfg(0.0, 0.0, 0.0);
    cfg.failures.as_mut().unwrap().exec_crash_prob = Some(0.2);
    cfg.run.measured_transactions = 400;
    let (mut hits, mut trials, mut aborted) = (0u64, 0u64, 0u64);
    for seed in 1..=3 {
        let r = run(&cfg, ProtocolSpec::TWO_PC, 40 + seed);
        assert_eq!(r.committed, 400, "restarts must not lose transactions");
        assert!(r.aborted_crash > 0);
        // Every crash in this config is an execution-phase crash.
        // Several cohorts of one incarnation can crash in the same
        // execution phase (one abort), and a crash near a window
        // boundary lands its abort in the next window, so the abort
        // count is bounded by — not equal to — the crash count.
        assert!(r.aborted_crash <= r.faults.cohort_crashes);
        hits += r.faults.cohort_crashes;
        trials += r.faults.cohort_crash_trials;
        aborted += r.aborted_crash;
    }
    let rate = hits as f64 / trials as f64;
    assert!(
        (rate - 0.2).abs() < 0.02,
        "exec crash rate {rate:.3} over {trials} trials, expected ≈ 0.2"
    );
    assert!(aborted > 0);

    // exec-cc=0 closes the window: with the replay-point probability
    // also zero, the cohort-crash machinery never rolls at all.
    let mut closed = cfg.clone();
    closed.failures.as_mut().unwrap().exec_crash_prob = Some(0.0);
    let r = run(&closed, ProtocolSpec::TWO_PC, 41);
    assert_eq!(r.aborted_crash, 0);
    assert_eq!(r.faults.cohort_crash_trials, 0);
}

/// Message loss: dropped coordinator messages are retransmitted on
/// timeout until the retry budget escalates to a reliable send — no
/// transaction is ever lost, at the price of retransmissions.
#[test]
fn message_loss_is_retried_until_delivery() {
    let mut cfg = faulty_cfg(0.0, 0.0, 1.0);
    cfg.run.measured_transactions = 300;
    let r = run(&cfg, ProtocolSpec::TWO_PC, 23);
    assert_eq!(r.committed, 300, "loss must never lose transactions");
    assert!(r.faults.messages_lost > 0);
    assert!(r.faults.retransmissions > 0);
    // p = 1.0 drops every lossy attempt, so every lossy send chain
    // exhausts its budget and escalates.
    assert!(r.faults.retry_escalations > 0);
    assert!(r.faults.retransmissions >= r.faults.retry_escalations);

    // max_retransmits = 0 makes every send reliable: the loss machinery
    // never rolls at all.
    let mut reliable = cfg.clone();
    if let Some(f) = reliable.failures.as_mut() {
        f.max_retransmits = 0;
    }
    let r0 = run(&reliable, ProtocolSpec::TWO_PC, 23);
    assert_eq!(r0.committed, 300);
    assert_eq!(r0.faults.messages_lost, 0);
    assert_eq!(r0.faults.message_loss_trials, 0);
    assert_eq!(r0.faults.retransmissions, 0);
}

/// Correlated site failures scoped to one WAN region
/// (`crash-region=R`): every cohort crash in the trace lands on a site
/// of region R, the trial counter counts only eligible rolls, and the
/// blocked-time / termination-round counters match the analytic
/// expectation — under 2PC a cohort crash strands its transaction for
/// about the cohort recovery time (1 s) and never invokes the
/// termination protocol (that machinery answers *master* crashes).
#[test]
fn cohort_crashes_scoped_to_one_region_stay_in_region() {
    use distcommit::db::engine::TraceEvent;
    // 8 sites in 4 regions of 2; crashes confined to region 1 (sites
    // 2 and 3). Zero latencies keep the topology a pure crash scope.
    let mut cfg = base_cfg();
    let topology: distcommit::db::config::Topology = "regions=4".parse().unwrap();
    cfg.topology = Some(topology);
    cfg.failures = Some(FailureConfig {
        cohort_crash_prob: 0.10,
        crash_region: Some(1),
        ..FailureConfig::default()
    });
    let (report, trace) =
        Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 31 + seed_offset(), u64::MAX).unwrap();

    // Every crash — at the execution-phase window or at a replay
    // point — must land on a site of region 1.
    let mut crashed_sites = Vec::new();
    for ev in &trace.events {
        if let TraceEvent::CohortCrashed { site, .. } = *ev {
            crashed_sites.push(site);
        }
    }
    assert!(
        crashed_sites.len() >= 2,
        "want at least two correlated in-region crashes, got {}",
        crashed_sites.len()
    );
    for &site in &crashed_sites {
        assert_eq!(
            topology.region_of(site, cfg.num_sites),
            1,
            "cohort crash at site {site} escaped region 1"
        );
    }
    // The trace spans warm-up too; the counter resets at the warm-up
    // boundary, so it can only be a subset of the traced crashes.
    assert!(report.faults.cohort_crashes > 0);
    assert!(report.faults.cohort_crashes <= crashed_sites.len() as u64);

    // Eligibility accounting: only region-1 cohorts roll the die, so
    // the unscoped twin (same seed, gate removed) sees far more trials.
    let mut unscoped_cfg = cfg.clone();
    unscoped_cfg.failures.as_mut().unwrap().crash_region = None;
    let unscoped = run(&unscoped_cfg, ProtocolSpec::TWO_PC, 31);
    assert!(report.faults.cohort_crash_trials > 0);
    assert!(
        report.faults.cohort_crash_trials < unscoped.faults.cohort_crash_trials / 2,
        "scoped trials {} vs unscoped {} — gate not applied before the bump",
        report.faults.cohort_crash_trials,
        unscoped.faults.cohort_crash_trials
    );

    // Analytic expectation: a crashed 2PC cohort holds the protocol up
    // for the cohort recovery time; siblings that prepared mid-outage
    // block for the remainder. The mean blocked time therefore sits
    // near 1 s (the recovery), and 2PC runs no termination rounds.
    assert!(report.faults.blocked_on_crash_cohorts > 0);
    assert!(
        (0.5..2.5).contains(&report.faults.mean_blocked_on_crash_s),
        "blocked {:.3}s, expected ≈ cohort recovery time (1s)",
        report.faults.mean_blocked_on_crash_s
    );
    assert_eq!(report.faults.termination_rounds, 0);
}

/// Observed fault rates track the configured probabilities, averaged
/// over seeds against the exact RNG-trial denominators — the fault
/// analogue of the Tables 3–4 overhead cross-check.
#[test]
fn observed_fault_rates_match_configured_probabilities() {
    let cfg = faulty_cfg(0.0, 0.1, 0.2);
    let (mut cc_hits, mut cc_trials) = (0u64, 0u64);
    let (mut loss_hits, mut loss_trials) = (0u64, 0u64);
    for seed in 1..=3 {
        let r = run(&cfg, ProtocolSpec::THREE_PC, seed);
        cc_hits += r.faults.cohort_crashes;
        cc_trials += r.faults.cohort_crash_trials;
        loss_hits += r.faults.messages_lost;
        loss_trials += r.faults.message_loss_trials;
    }
    let cc_rate = cc_hits as f64 / cc_trials as f64;
    let loss_rate = loss_hits as f64 / loss_trials as f64;
    assert!(
        (cc_rate - 0.1).abs() < 0.02,
        "cohort crash rate {cc_rate:.3} over {cc_trials} trials, expected ≈ 0.1"
    );
    assert!(
        (loss_rate - 0.2).abs() < 0.02,
        "loss rate {loss_rate:.3} over {loss_trials} trials, expected ≈ 0.2"
    );
}
