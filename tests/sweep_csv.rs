//! Golden determinism of the sweep CSV export (`distcommit sweep
//! --csv`): the combined throughput + phase-latency + per-site
//! occupancy CSV must be byte-identical regardless of how many worker
//! threads executed the grid — including when fault injection is
//! active, since the fault schedule is part of each cell's seeded
//! stream.

use distcommit::db::config::{FailureConfig, SystemConfig};
use distcommit::db::experiments::{sweep, Experiment, Scale};
use distcommit::db::output::render_sweep_csv;
use distcommit::proto::ProtocolSpec;

fn build(jobs: Option<usize>) -> Experiment {
    let cfg = SystemConfig::paper_baseline();
    let faulty = cfg
        .clone()
        .with_failures(FailureConfig::master_crashes(0.02));
    let scale = Scale::quick()
        .with_runs(10, 120)
        .with_mpls(vec![1, 2, 4])
        .with_seed(11)
        .with_replications(2)
        .with_jobs(jobs);
    let specs = vec![
        ("2PC".to_string(), ProtocolSpec::TWO_PC, cfg.clone()),
        ("3PC".to_string(), ProtocolSpec::THREE_PC, cfg.clone()),
        ("2PC faulty".to_string(), ProtocolSpec::TWO_PC, faulty),
    ];
    Experiment {
        id: "csv-golden".into(),
        title: "sweep csv golden".into(),
        config: cfg.clone(),
        series: sweep(&cfg, &specs, &scale).unwrap(),
    }
}

#[test]
fn sweep_csv_is_byte_identical_across_worker_counts() {
    let serial = render_sweep_csv(&build(Some(1)));
    let parallel = render_sweep_csv(&build(Some(4)));
    assert_eq!(serial, parallel);

    // Shape: three blank-line-separated blocks, each with a header;
    // NaN never appears on a fully populated grid.
    let blocks: Vec<&str> = serial.split("\n\n").collect();
    assert_eq!(blocks.len(), 3);
    for block in &blocks[..2] {
        assert_eq!(block.trim_end().lines().count(), 1 + 3, "{block}");
    }
    assert!(blocks[0].starts_with("mpl,2PC,2PC ci90"));
    assert!(blocks[1].starts_with("mpl,"));
    assert!(blocks[1].contains("exec p50"));
    assert!(!serial.contains("NaN"));

    // The occupancy block carries one row per (MPL, series, site) with
    // p99 columns for every station class.
    let occ = blocks[2];
    assert!(occ.starts_with("mpl,series,site,cpu occ p50"));
    assert!(occ.contains("cpu occ p99"));
    assert!(occ.contains("log occ p99"));
    let sites = 8; // paper baseline
    assert_eq!(
        occ.trim_end().lines().count(),
        1 + 3 * 3 * sites,
        "3 MPLs × 3 series × {sites} sites"
    );
    assert!(occ.contains("1,2PC,0,"));
    assert!(occ.contains("4,2PC faulty,7,"));
}
