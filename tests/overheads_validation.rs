//! End-to-end validation of the simulator against the paper's Tables 3
//! and 4: in a conflict-free configuration the *measured* per-commit
//! message and forced-write counts must equal the analytic overhead
//! model (which the `commitproto` unit tests pin to the tables).
//!
//! The runs use a huge database at MPL 1 so no aborts occur; counts are
//! ratios over the measurement window, so we allow a sub-2% tolerance
//! for transactions straddling the window boundaries.

use distcommit::db::experiments::measured_overheads;
use distcommit::proto::ProtocolSpec;

fn assert_close(measured: f64, expected: u64, what: &str) {
    let expected = expected as f64;
    let tol = (expected * 0.02).max(0.05);
    assert!(
        (measured - expected).abs() <= tol,
        "{what}: measured {measured:.3}, expected {expected} (tol {tol:.3})"
    );
}

fn validate(dist_degree: u32, spec: ProtocolSpec) {
    let report = measured_overheads(dist_degree, spec, 0xD15C).expect("valid config");
    assert_eq!(
        report.total_aborts(),
        0,
        "{} d={dist_degree}: the validation workload must be conflict-free",
        spec.name()
    );
    let expected = spec.committed_overheads(dist_degree);
    assert_close(
        report.exec_messages_per_commit,
        expected.exec_messages,
        &format!("{} d={dist_degree} exec messages", spec.name()),
    );
    assert_close(
        report.commit_messages_per_commit,
        expected.commit_messages,
        &format!("{} d={dist_degree} commit messages", spec.name()),
    );
    assert_close(
        report.forced_writes_per_commit,
        expected.forced_writes,
        &format!("{} d={dist_degree} forced writes", spec.name()),
    );
}

#[test]
fn table_3_two_phase_commit() {
    validate(3, ProtocolSpec::TWO_PC);
}

#[test]
fn table_3_presumed_abort() {
    validate(3, ProtocolSpec::PA);
}

#[test]
fn table_3_presumed_commit() {
    validate(3, ProtocolSpec::PC);
}

#[test]
fn table_3_three_phase_commit() {
    validate(3, ProtocolSpec::THREE_PC);
}

#[test]
fn table_3_dpcc_baseline() {
    validate(3, ProtocolSpec::DPCC);
}

#[test]
fn table_3_cent_baseline() {
    validate(3, ProtocolSpec::CENT);
}

#[test]
fn table_4_two_phase_commit() {
    validate(6, ProtocolSpec::TWO_PC);
}

#[test]
fn table_4_presumed_abort() {
    validate(6, ProtocolSpec::PA);
}

#[test]
fn table_4_presumed_commit() {
    validate(6, ProtocolSpec::PC);
}

#[test]
fn table_4_three_phase_commit() {
    validate(6, ProtocolSpec::THREE_PC);
}

#[test]
fn table_4_dpcc_baseline() {
    validate(6, ProtocolSpec::DPCC);
}

#[test]
fn table_4_cent_baseline() {
    validate(6, ProtocolSpec::CENT);
}

#[test]
fn opt_variants_cost_the_same_as_their_bases() {
    // OPT changes lock-manager behaviour, not the message/logging
    // schedule — its measured overheads must match the base protocol's.
    for (opt, d) in [
        (ProtocolSpec::OPT_2PC, 3),
        (ProtocolSpec::OPT_PA, 3),
        (ProtocolSpec::OPT_PC, 3),
        (ProtocolSpec::OPT_3PC, 3),
        (ProtocolSpec::OPT_2PC, 6),
    ] {
        validate(d, opt);
    }
}

#[test]
fn intermediate_degrees_match_the_analytic_model() {
    for d in [2, 4, 5] {
        validate(d, ProtocolSpec::TWO_PC);
        validate(d, ProtocolSpec::PC);
    }
}

/// The engine cross-checks every clean commit against the analytic
/// model at cleanup time and accumulates the result in
/// `SimReport::overhead_check`. On a no-abort workload the check must
/// cover every commit and find zero mismatches — this is *exact*
/// per-transaction accounting, unlike the windowed ratios above.
#[test]
fn per_transaction_counters_match_model_exactly() {
    for spec in [ProtocolSpec::TWO_PC, ProtocolSpec::PA, ProtocolSpec::PC] {
        for d in [3, 6] {
            let r = measured_overheads(d, spec, 0xBEEF).expect("valid config");
            assert_eq!(
                r.total_aborts(),
                0,
                "{} d={d}: no-abort workload",
                spec.name()
            );
            let oc = r.overhead_check;
            // The check fires at cleanup; txns decided but not yet
            // cleaned up when the run ends are counted as committed but
            // never checked, so allow a handful in flight.
            assert!(
                oc.checked_commits + 20 >= r.committed,
                "{} d={d}: only {} of {} commits checked",
                spec.name(),
                oc.checked_commits,
                r.committed
            );
            assert!(
                oc.is_clean(),
                "{} d={d}: {}/{} commits diverged from Tables 3-4 \
                 (message delta {}, forced-write delta {})",
                spec.name(),
                oc.mismatched_commits,
                oc.checked_commits,
                oc.message_delta,
                oc.forced_write_delta
            );
        }
    }
}
