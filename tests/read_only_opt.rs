//! The Read-Only commit optimization (§3.2): cohorts without updates
//! answer PREPARE with a READ vote and drop out of phase two; a fully
//! read-only transaction commits in one phase.

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::{LogLabel, MsgLabel, Simulation};
use distcommit::proto::{ProtocolSpec, ReadOnlyScenario};

fn ro_cfg(update_prob: f64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.db_size = 80_000; // conflict-free: counts must be exact
    cfg.mpl = 1;
    cfg.update_prob = update_prob;
    cfg.read_only_optimization = true;
    cfg.run.warmup_transactions = 50;
    cfg.run.measured_transactions = 600;
    cfg
}

#[test]
fn fully_read_only_transactions_commit_in_one_phase() {
    let cfg = ro_cfg(0.0);
    let r = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 1).unwrap();
    assert_eq!(r.total_aborts(), 0);
    // Analytic model: PREPARE out + READ votes back, nothing forced.
    let expect = ProtocolSpec::TWO_PC.committed_overheads_read_only(ReadOnlyScenario {
        dist_degree: 3,
        remote_read_only: 2,
        local_read_only: true,
    });
    assert!((r.commit_messages_per_commit - expect.commit_messages as f64).abs() < 0.1);
    assert!(
        r.forced_writes_per_commit < 0.05,
        "got {}",
        r.forced_writes_per_commit
    );
}

#[test]
fn read_only_choreography() {
    let cfg = ro_cfg(0.0);
    let (_, tr) = Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 1, 1).unwrap();
    assert_eq!(tr.all_sends(1, MsgLabel::VoteReadOnly), 3);
    assert_eq!(tr.all_sends(1, MsgLabel::VoteYes), 0);
    assert_eq!(tr.all_sends(1, MsgLabel::DecisionCommit), 0);
    assert_eq!(tr.all_sends(1, MsgLabel::Ack), 0);
    assert_eq!(tr.forced_writes(1, LogLabel::Prepare), 0);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterCommit), 0);
}

#[test]
fn read_only_3pc_skips_the_precommit_round_when_empty() {
    let cfg = ro_cfg(0.0);
    let (r, tr) = Simulation::run_traced(&cfg, ProtocolSpec::THREE_PC, 2, 1).unwrap();
    assert_eq!(tr.all_sends(1, MsgLabel::PreCommit), 0);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterPrecommit), 0);
    assert!(r.forced_writes_per_commit < 0.05);
}

#[test]
fn pc_still_pays_the_collecting_record() {
    let cfg = ro_cfg(0.0);
    let r = Simulation::run(&cfg, ProtocolSpec::PC, 3).unwrap();
    // The collecting record is written before the master learns that
    // everyone is read-only.
    assert!(
        (r.forced_writes_per_commit - 1.0).abs() < 0.05,
        "got {}",
        r.forced_writes_per_commit
    );
}

#[test]
fn mixed_workload_lands_between_the_extremes() {
    let full = {
        let mut c = ro_cfg(1.0);
        c.read_only_optimization = true; // irrelevant at update_prob 1
        Simulation::run(&c, ProtocolSpec::TWO_PC, 4).unwrap()
    };
    let mixed = Simulation::run(&ro_cfg(0.5), ProtocolSpec::TWO_PC, 4).unwrap();
    let none = Simulation::run(&ro_cfg(0.0), ProtocolSpec::TWO_PC, 4).unwrap();
    assert!(mixed.forced_writes_per_commit < full.forced_writes_per_commit);
    assert!(mixed.forced_writes_per_commit > none.forced_writes_per_commit);
    assert!(mixed.commit_messages_per_commit < full.commit_messages_per_commit);
}

#[test]
fn optimization_off_keeps_full_protocol_for_readers() {
    let mut cfg = ro_cfg(0.0);
    cfg.read_only_optimization = false;
    let r = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 5).unwrap();
    // Without the optimization even pure readers vote YES with forced
    // prepare records and a full second phase.
    let expect = ProtocolSpec::TWO_PC.committed_overheads(3);
    assert!((r.forced_writes_per_commit - expect.forced_writes as f64).abs() < 0.15);
    assert!((r.commit_messages_per_commit - expect.commit_messages as f64).abs() < 0.15);
}

#[test]
fn read_only_optimization_lifts_read_heavy_throughput() {
    let mut off = SystemConfig::paper_baseline();
    off.update_prob = 0.1;
    off.mpl = 4;
    off.run.warmup_transactions = 150;
    off.run.measured_transactions = 1_200;
    let mut on = off.clone();
    on.read_only_optimization = true;
    let r_off = Simulation::run(&off, ProtocolSpec::TWO_PC, 6).unwrap();
    let r_on = Simulation::run(&on, ProtocolSpec::TWO_PC, 6).unwrap();
    assert!(
        r_on.throughput > r_off.throughput * 1.02,
        "read-only optimization should pay off on a 90% read workload ({:.2} vs {:.2})",
        r_on.throughput,
        r_off.throughput
    );
    assert!(r_on.forced_writes_per_commit < r_off.forced_writes_per_commit);
}

#[test]
fn read_only_composes_with_opt_lending() {
    let mut cfg = SystemConfig::pure_data_contention();
    cfg.update_prob = 0.5;
    cfg.read_only_optimization = true;
    cfg.mpl = 6;
    cfg.run.warmup_transactions = 150;
    cfg.run.measured_transactions = 1_200;
    let r = Simulation::run(&cfg, ProtocolSpec::OPT_2PC, 7).unwrap();
    assert_eq!(r.committed, 1_200);
    assert!(
        r.borrow_ratio > 0.0,
        "lending still happens for update cohorts"
    );
}
