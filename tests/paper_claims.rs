//! The paper's qualitative claims, re-verified on every test run.
//!
//! These are *shape* assertions — who beats whom, and by roughly what
//! kind of margin — evaluated on short but statistically adequate runs
//! with fixed seeds. Absolute numbers are pinned loosely; orderings are
//! pinned hard.

use distcommit::db::config::{ResourceMode, SystemConfig};
use distcommit::db::engine::Simulation;
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;

fn run_at(cfg: &SystemConfig, spec: ProtocolSpec, mpl: u32, seed: u64) -> SimReport {
    let mut cfg = cfg.clone();
    cfg.mpl = mpl;
    cfg.run.warmup_transactions = 200;
    cfg.run.measured_transactions = 1_500;
    Simulation::run(&cfg, spec, seed).expect("valid config")
}

/// §5.2 headline: "distributed commit processing can have considerably
/// more effect than distributed data processing".
#[test]
fn commit_processing_costs_more_than_data_distribution() {
    let cfg = SystemConfig::paper_baseline();
    let cent = run_at(&cfg, ProtocolSpec::CENT, 4, 42);
    let dpcc = run_at(&cfg, ProtocolSpec::DPCC, 4, 42);
    let two_pc = run_at(&cfg, ProtocolSpec::TWO_PC, 4, 42);
    let data_cost = cent.throughput - dpcc.throughput;
    let commit_cost = dpcc.throughput - two_pc.throughput;
    assert!(
        commit_cost > data_cost,
        "commit cost {commit_cost:.2} should exceed data-distribution cost {data_cost:.2}"
    );
    assert!(commit_cost > 0.0);
}

/// Baseline dominance across the loading range: CENT ≥ DPCC ≥ 2PC ≥ 3PC.
#[test]
fn baseline_ordering_holds_across_mpls() {
    let cfg = SystemConfig::paper_baseline();
    for mpl in [2, 4, 8] {
        let cent = run_at(&cfg, ProtocolSpec::CENT, mpl, 11);
        let dpcc = run_at(&cfg, ProtocolSpec::DPCC, mpl, 11);
        let two_pc = run_at(&cfg, ProtocolSpec::TWO_PC, mpl, 11);
        let three_pc = run_at(&cfg, ProtocolSpec::THREE_PC, mpl, 11);
        // 3% slack for run-to-run noise on the near-ties.
        assert!(
            cent.throughput * 1.03 >= dpcc.throughput,
            "CENT < DPCC at MPL {mpl}"
        );
        assert!(
            dpcc.throughput * 1.03 >= two_pc.throughput,
            "DPCC < 2PC at MPL {mpl}"
        );
        assert!(
            two_pc.throughput > three_pc.throughput,
            "2PC <= 3PC at MPL {mpl}"
        );
    }
}

/// §5.2/§5.3: OPT matches 2PC when there is little to borrow and beats
/// it clearly under contention, approaching the DPCC bound.
#[test]
fn opt_beats_2pc_under_contention() {
    let cfg = SystemConfig::pure_data_contention();
    let mpl = 6;
    let two_pc = run_at(&cfg, ProtocolSpec::TWO_PC, mpl, 21);
    let opt = run_at(&cfg, ProtocolSpec::OPT_2PC, mpl, 21);
    let dpcc = run_at(&cfg, ProtocolSpec::DPCC, mpl, 21);
    assert!(
        opt.throughput > two_pc.throughput * 1.15,
        "OPT ({:.1}) should clearly beat 2PC ({:.1}) under pure DC",
        opt.throughput,
        two_pc.throughput
    );
    assert!(
        opt.throughput <= dpcc.throughput * 1.05,
        "OPT cannot beat the DPCC bound"
    );
    // And the mechanism is visible: borrowing happened, blocking fell.
    assert!(opt.borrow_ratio > 0.5);
    assert_eq!(two_pc.borrow_ratio, 0.0);
    assert!(opt.block_ratio < two_pc.block_ratio);
}

/// At MPL 1 with almost no contention, OPT ≈ 2PC ("at low MPLs ... OPT
/// is virtually identical to 2PC").
#[test]
fn opt_equals_2pc_without_contention() {
    let cfg = SystemConfig::paper_baseline();
    let two_pc = run_at(&cfg, ProtocolSpec::TWO_PC, 1, 31);
    let opt = run_at(&cfg, ProtocolSpec::OPT_2PC, 1, 31);
    let rel = (opt.throughput - two_pc.throughput).abs() / two_pc.throughput;
    assert!(
        rel < 0.05,
        "OPT and 2PC differ by {:.1}% at MPL 1",
        rel * 100.0
    );
    assert!(opt.borrow_ratio < 0.5, "little borrowing expected at MPL 1");
}

/// §5.6: OPT-3PC buys non-blocking recovery *and* a peak throughput at
/// least comparable to 2PC — the "win-win".
#[test]
fn opt_3pc_wins_back_3pcs_overheads() {
    let cfg = SystemConfig::pure_data_contention();
    let mpl = 5;
    let two_pc = run_at(&cfg, ProtocolSpec::TWO_PC, mpl, 41);
    let three_pc = run_at(&cfg, ProtocolSpec::THREE_PC, mpl, 41);
    let opt_3pc = run_at(&cfg, ProtocolSpec::OPT_3PC, mpl, 41);
    assert!(
        opt_3pc.throughput > three_pc.throughput * 1.2,
        "OPT must lift 3PC substantially"
    );
    assert!(
        opt_3pc.throughput > two_pc.throughput * 0.95,
        "OPT-3PC ({:.1}) should be at least comparable to 2PC ({:.1}) under DC",
        opt_3pc.throughput,
        two_pc.throughput
    );
}

/// §5.6: the prepared state lasts longer under 3PC, so borrowing is
/// *more* valuable there.
#[test]
fn borrowing_is_bigger_under_3pc() {
    let cfg = SystemConfig::pure_data_contention();
    let opt = run_at(&cfg, ProtocolSpec::OPT_2PC, 6, 51);
    let opt_3pc = run_at(&cfg, ProtocolSpec::OPT_3PC, 6, 51);
    assert!(
        opt_3pc.borrow_ratio > opt.borrow_ratio,
        "3PC's longer prepared state should increase borrowing ({:.2} vs {:.2})",
        opt_3pc.borrow_ratio,
        opt.borrow_ratio
    );
    assert!(opt_3pc.mean_prepared_time_s > opt.mean_prepared_time_s);
}

/// §5.5: at DistDegree 6 the system turns CPU-bound, PC clearly beats
/// 2PC, OPT's edge shrinks, and OPT-PC is the best of the four.
#[test]
fn high_distribution_shifts_the_balance() {
    let cfg = SystemConfig::paper_baseline().higher_distribution();
    let mpl = 4;
    let two_pc = run_at(&cfg, ProtocolSpec::TWO_PC, mpl, 61);
    let pc = run_at(&cfg, ProtocolSpec::PC, mpl, 61);
    let opt = run_at(&cfg, ProtocolSpec::OPT_2PC, mpl, 61);
    let opt_pc = run_at(&cfg, ProtocolSpec::OPT_PC, mpl, 61);
    // CPU-bound: utilization well above the data disks'.
    assert!(two_pc.utilizations.cpu > two_pc.utilizations.data_disk);
    assert!(two_pc.utilizations.cpu > 0.7);
    assert!(
        pc.throughput > two_pc.throughput * 1.05,
        "PC should clearly beat 2PC at d=6"
    );
    // OPT alone is only marginally better than 2PC here...
    assert!(opt.throughput > two_pc.throughput * 0.97);
    // ...but composing the optimizations wins.
    assert!(opt_pc.throughput >= pc.throughput * 0.97);
    assert!(opt_pc.throughput > two_pc.throughput);
}

/// §5.3: under pure data contention everything is contention-limited —
/// infinite resources mean zero queueing, so at MPL 1 a transaction's
/// response time is essentially its raw service demand.
#[test]
fn infinite_resources_remove_queueing() {
    let mut cfg = SystemConfig::pure_data_contention();
    assert_eq!(cfg.resources, ResourceMode::Infinite);
    cfg.run.warmup_transactions = 100;
    cfg.run.measured_transactions = 800;
    cfg.mpl = 1;
    let r = Simulation::run(&cfg, ProtocolSpec::CENT, 71).unwrap();
    // A mean CENT transaction: ~6 pages per cohort in parallel cohorts,
    // each page 25 ms, plus the decision write — a few hundred ms; any
    // queueing would push it well past this band.
    assert!(
        (0.12..0.45).contains(&r.mean_response_s),
        "pure-DC CENT response at MPL 1 should be near raw service time, got {:.3}",
        r.mean_response_s
    );
    // Infinite stations never queue, so utilization-as-concurrency is
    // finite but the run must show no deadlock-free anomalies.
    assert!(r.total_aborts() <= r.committed);
}

/// Thrashing: throughput rises to a knee and falls beyond it.
#[test]
fn throughput_knee_exists() {
    let cfg = SystemConfig::paper_baseline();
    let lo = run_at(&cfg, ProtocolSpec::TWO_PC, 1, 81);
    let peak = run_at(&cfg, ProtocolSpec::TWO_PC, 4, 81);
    let hi = run_at(&cfg, ProtocolSpec::TWO_PC, 10, 81);
    assert!(
        peak.throughput > lo.throughput,
        "throughput should rise toward the knee"
    );
    assert!(
        peak.throughput > hi.throughput,
        "throughput should fall past the knee"
    );
    assert!(
        hi.block_ratio > peak.block_ratio,
        "blocking should grow with MPL"
    );
}

/// Block ratios are well-formed and OPT's is the lowest.
#[test]
fn block_ratio_sanity() {
    let cfg = SystemConfig::paper_baseline();
    for spec in [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
    ] {
        let r = run_at(&cfg, spec, 8, 91);
        assert!(
            (0.0..=1.0).contains(&r.block_ratio),
            "{}: {}",
            spec.name(),
            r.block_ratio
        );
        assert!(r.block_ratio > 0.3, "MPL 8 must show substantial blocking");
    }
    let opt = run_at(&cfg, ProtocolSpec::OPT_2PC, 8, 91);
    let three = run_at(&cfg, ProtocolSpec::THREE_PC, 8, 91);
    assert!(opt.block_ratio < three.block_ratio);
}
