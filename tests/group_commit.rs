//! Group commit (§3.2): forced writes batched at the log disks.
//! Checks correctness (identical protocol accounting), the latency/
//! throughput trade, and the OPT synergy the paper predicts ("OPT is
//! especially attractive to integrate with ... Group Commit, since
//! they extend the period during which data is held in the prepared
//! state").

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::Simulation;
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;

fn run(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> SimReport {
    let mut cfg = cfg.clone();
    cfg.run.warmup_transactions = 150;
    cfg.run.measured_transactions = 1_200;
    Simulation::run(&cfg, spec, seed).expect("valid config")
}

#[test]
fn group_commit_preserves_protocol_accounting() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.db_size = 80_000; // conflict-free, exact counts
    cfg.mpl = 2;
    cfg.group_commit_batch = Some(8);
    let r = run(&cfg, ProtocolSpec::TWO_PC, 1);
    assert_eq!(r.total_aborts(), 0);
    let expect = ProtocolSpec::TWO_PC.committed_overheads(3);
    // Batched or not, the same records are forced and the same messages
    // sent.
    assert!((r.forced_writes_per_commit - expect.forced_writes as f64).abs() < 0.15);
    assert!((r.commit_messages_per_commit - expect.commit_messages as f64).abs() < 0.15);
}

#[test]
fn batch_of_one_behaves_like_no_batching() {
    // A batcher with max_batch = 1 is a plain FCFS log disk; the runs
    // should be statistically indistinguishable (they are not
    // event-identical because the batcher and the station schedule
    // through different event variants, but every latency is the same).
    let mut plain = SystemConfig::paper_baseline();
    plain.mpl = 3;
    let mut batched = plain.clone();
    batched.group_commit_batch = Some(1);
    let a = run(&plain, ProtocolSpec::TWO_PC, 2);
    let b = run(&batched, ProtocolSpec::TWO_PC, 2);
    assert_eq!(a.committed, b.committed);
    assert!(
        (a.throughput - b.throughput).abs() / a.throughput < 0.02,
        "batch=1 should equal no batching: {:.2} vs {:.2}",
        a.throughput,
        b.throughput
    );
    assert!((a.mean_response_s - b.mean_response_s).abs() / a.mean_response_s < 0.02);
}

/// A configuration whose bottleneck is genuinely the log disks: no data
/// contention (huge database), plenty of data disks, and 3PC's eleven
/// forced writes per transaction.
fn log_bound() -> SystemConfig {
    // Fast network so the CPUs stay out of the way: per transaction,
    // 3PC then demands ~27.5 ms of log disk against ~15 ms of CPU and
    // ~11 ms of data disk.
    let mut cfg = SystemConfig::paper_baseline().fast_network();
    cfg.db_size = 80_000;
    cfg.num_data_disks = 4;
    cfg.mpl = 10;
    cfg
}

#[test]
fn group_commit_relieves_a_log_bound_system() {
    let cfg = log_bound();
    let plain = run(&cfg, ProtocolSpec::THREE_PC, 3);
    let mut gc = cfg.clone();
    gc.group_commit_batch = Some(8);
    let batched = run(&gc, ProtocolSpec::THREE_PC, 3);
    assert!(
        plain.utilizations.log_disk > plain.utilizations.data_disk,
        "setup must be log-bound (log {:.2} vs data {:.2})",
        plain.utilizations.log_disk,
        plain.utilizations.data_disk
    );
    assert!(
        batched.throughput > plain.throughput * 1.05,
        "group commit should lift a log-bound system ({:.2} vs {:.2}; plain log util {:.2})",
        batched.throughput,
        plain.throughput,
        plain.utilizations.log_disk,
    );
    assert!(
        batched.mean_log_batch > 1.3,
        "batches should actually form under load, got {:.2}",
        batched.mean_log_batch
    );
    assert!((plain.mean_log_batch - 1.0).abs() < 1e-9);
}

#[test]
fn batches_shrink_when_the_log_is_idle() {
    // At MPL 1 with no contention, forced writes rarely meet in a
    // queue: batch sizes stay near 1 and throughput is unchanged.
    let mut cfg = log_bound();
    cfg.mpl = 1;
    let plain = run(&cfg, ProtocolSpec::TWO_PC, 4);
    let mut gc = cfg.clone();
    gc.group_commit_batch = Some(8);
    let batched = run(&gc, ProtocolSpec::TWO_PC, 4);
    assert!(
        batched.mean_log_batch < 1.2,
        "got {:.3}",
        batched.mean_log_batch
    );
    let rel = (batched.throughput - plain.throughput).abs() / plain.throughput;
    assert!(rel < 0.03, "idle-log batching must be a no-op ({rel:.3})");
}

#[test]
fn bigger_batches_help_more_under_log_pressure() {
    let cfg = log_bound();
    let mut t = Vec::new();
    for batch in [1u32, 4, 16] {
        let mut c = cfg.clone();
        c.group_commit_batch = Some(batch);
        t.push(run(&c, ProtocolSpec::THREE_PC, 5).throughput);
    }
    assert!(
        t[1] > t[0],
        "batch 4 ({:.2}) should beat batch 1 ({:.2})",
        t[1],
        t[0]
    );
    assert!(
        t[2] >= t[1] * 0.97,
        "batch 16 ({:.2}) should not regress vs 4 ({:.2})",
        t[2],
        t[1]
    );
}

#[test]
fn group_commit_is_ignored_under_infinite_resources() {
    let mut cfg = SystemConfig::pure_data_contention();
    cfg.mpl = 4;
    let plain = run(&cfg, ProtocolSpec::TWO_PC, 6);
    let mut gc = cfg.clone();
    gc.group_commit_batch = Some(8);
    let batched = run(&gc, ProtocolSpec::TWO_PC, 6);
    // identical runs: the flag is meaningless without queueing
    assert_eq!(plain.events, batched.events);
    assert!((plain.throughput - batched.throughput).abs() < 1e-9);
}

#[test]
fn zero_batch_size_is_rejected() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.group_commit_batch = Some(0);
    assert!(cfg.validate().is_err());
}
