//! The replicated-shard commit family: Paxos Commit (each shard a
//! 2F+1 acceptor group, 2PC as the F = 0 degenerate case) and REP2PC
//! (a 2PC master replicating its decision record to 2F standby
//! coordinators before announcing it).
//!
//! The headline result locked in here extends the paper's §2.4
//! blocking argument to replication: replicating the *decision record*
//! (REP2PC) does not unblock prepared cohorts when the master crashes
//! — they still wait out the full recovery — while Paxos Commit at the
//! same F fails over to the surviving acceptors after the detection
//! timeout, keeping the blocked time bounded.

use distcommit::db::config::{FailureConfig, SystemConfig};
use distcommit::db::engine::Simulation;
use distcommit::db::experiments::{self, Scale};
use distcommit::proto::ProtocolSpec;

fn small_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 4;
    cfg.run.warmup_transactions = 100;
    cfg.run.measured_transactions = 600;
    cfg
}

/// Paxos Commit at F = 0 is 2PC: one acceptor co-located with the
/// master, so the quorum choreography degenerates to the plain
/// vote-decide-ack schedule. The per-commit message and forced-write
/// counts match 2PC exactly — across seeds — and both sides pass the
/// Tables 3–4 overhead cross-check on every commit.
#[test]
fn paxos_f0_overheads_match_2pc_across_seeds() {
    // Conflict-free, MPL 1 — every committed transaction has the same
    // distribution degree, so the per-commit averages are the exact
    // per-transaction counts (the Tables 3–4 measurement harness).
    for d in [3u32, 6] {
        for seed in [7, 42, 2026] {
            let two_pc = experiments::measured_overheads(d, ProtocolSpec::TWO_PC, seed).unwrap();
            let paxos = experiments::measured_overheads(d, ProtocolSpec::PAXOS, seed).unwrap();
            // Per-transaction equality: the engine cross-checks every
            // commit's message and forced-write counters against the
            // analytic row, and both protocols' rows are identical
            // (asserted below) — so a clean check on both sides means
            // every single transaction paid exactly the same counts.
            for r in [&two_pc, &paxos] {
                assert!(r.committed > 0);
                assert!(r.overhead_check.checked_commits > 0, "d={d} seed {seed}");
                assert!(
                    r.overhead_check.is_clean(),
                    "d={d} seed {seed}: {:?}",
                    r.overhead_check
                );
            }
            // The run-level averages also agree, up to the handful of
            // window-straddling operations (e.g. acks of the warm-up
            // boundary transaction) that belong to no checked commit:
            // the totals may differ by at most one transaction's worth
            // per window edge.
            let msg_gap = (two_pc.commit_messages_per_commit - paxos.commit_messages_per_commit)
                .abs()
                * two_pc.committed as f64;
            let forced_gap = (two_pc.forced_writes_per_commit - paxos.forced_writes_per_commit)
                .abs()
                * two_pc.committed as f64;
            let per_txn = ProtocolSpec::TWO_PC.committed_overheads(d);
            assert!(
                msg_gap <= 2.0 * per_txn.commit_messages as f64,
                "d={d} seed {seed}: commit-message totals {msg_gap} apart"
            );
            assert!(
                forced_gap <= 2.0 * per_txn.forced_writes as f64,
                "d={d} seed {seed}: forced-write totals {forced_gap} apart"
            );
        }
        // Identical analytic rows: 4d messages and 2d+1 forced records
        // — the shared model both runs were checked against above.
        let o2 = ProtocolSpec::TWO_PC.committed_overheads(d);
        let op = ProtocolSpec::PAXOS.committed_overheads(d);
        assert_eq!(o2.commit_messages, op.commit_messages);
        assert_eq!(o2.forced_writes, op.forced_writes);
    }
}

/// The analytic overhead model holds under replication too: with
/// F = 1 every commit still matches the closed-form replicated counts
/// (the engine cross-checks each commit and the report aggregates the
/// deltas), for both family members.
#[test]
fn replicated_overhead_check_is_clean_at_f1() {
    let cfg = small_cfg().with_replication(1);
    for spec in [ProtocolSpec::PAXOS, ProtocolSpec::REP_2PC] {
        let r = Simulation::run(&cfg, spec, 11).unwrap();
        assert!(r.committed > 0, "{}", spec.name());
        assert!(r.overhead_check.checked_commits > 0, "{}", spec.name());
        assert!(
            r.overhead_check.is_clean(),
            "{}: overhead mismatch {:?}",
            spec.name(),
            r.overhead_check
        );
        // Replication is not free: both members pay more than 2PC.
        let two_pc = Simulation::run(&small_cfg(), ProtocolSpec::TWO_PC, 11).unwrap();
        assert!(
            r.commit_messages_per_commit > two_pc.commit_messages_per_commit,
            "{}",
            spec.name()
        );
    }
}

/// Replicated runs stay byte-identical under any worker count: the
/// same (protocol, MPL, rep) grid sweeps to bit-equal reports whether
/// one thread or four execute it.
#[test]
fn replicated_sweep_is_invariant_under_worker_count() {
    let cfg = SystemConfig::paper_baseline().with_replication(1);
    let specs: Vec<(String, ProtocolSpec, SystemConfig)> =
        [ProtocolSpec::PAXOS, ProtocolSpec::REP_2PC]
            .iter()
            .map(|&p| (p.name().to_string(), p, cfg.clone()))
            .collect();
    let mut scale = Scale::quick().with_runs(50, 300).with_seed(5);
    scale.mpls = vec![2, 4];
    scale.jobs = Some(1);
    let serial = experiments::sweep(&cfg, &specs, &scale).unwrap();
    scale.jobs = Some(4);
    let parallel = experiments::sweep(&cfg, &specs, &scale).unwrap();
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.label, b.label);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.events, y.events, "{}", a.label);
            assert_eq!(x.committed, y.committed, "{}", a.label);
            assert_eq!(
                x.throughput.to_bits(),
                y.throughput.to_bits(),
                "{}",
                a.label
            );
        }
    }
}

/// §2.4 extended to replication, the headline: under master crashes at
/// F = 1, REP2PC still blocks its prepared cohorts for the full master
/// recovery (≈ 5 s — replicating the decision record buys durability,
/// not availability), while Paxos Commit fails over to the surviving
/// acceptors and keeps the blocked time bounded by the detection
/// timeout plus the failover round.
#[test]
fn paxos_failover_bounds_blocked_time_where_rep2pc_blocks() {
    let mut cfg = small_cfg().with_replication(1);
    cfg.failures = Some(FailureConfig::master_crashes(0.05));
    let rep = Simulation::run(&cfg, ProtocolSpec::REP_2PC, 9).unwrap();
    let paxos = Simulation::run(&cfg, ProtocolSpec::PAXOS, 9).unwrap();

    assert!(rep.faults.master_crashes > 0);
    assert!(paxos.faults.master_crashes > 0);
    assert!(rep.faults.blocked_on_crash_cohorts > 0);
    assert!(paxos.faults.blocked_on_crash_cohorts > 0);

    assert!(
        rep.faults.mean_blocked_on_crash_s > 4.5,
        "REP2PC blocked {:.3}s, expected ≈ recovery_time (5s)",
        rep.faults.mean_blocked_on_crash_s
    );
    assert!(
        paxos.faults.mean_blocked_on_crash_s < 1.5,
        "PAXOS blocked {:.3}s, expected ≲ detection_timeout + failover",
        paxos.faults.mean_blocked_on_crash_s
    );
    assert!(
        rep.faults.mean_blocked_on_crash_s > 3.0 * paxos.faults.mean_blocked_on_crash_s,
        "REP2PC ({:.3}s) vs PAXOS ({:.3}s)",
        rep.faults.mean_blocked_on_crash_s,
        paxos.faults.mean_blocked_on_crash_s
    );
    // Only Paxos Commit runs the failover; the replicated 2PC master's
    // standbys hold a copy of the decision record but no vote state,
    // so its cohorts just wait.
    assert!(paxos.faults.termination_rounds > 0);
    assert_eq!(rep.faults.termination_rounds, 0);
}

/// The replicated family rejects configurations it cannot model, with
/// errors that name the constraint.
#[test]
fn replication_config_validation() {
    // F > 0 needs a replicated protocol.
    let cfg = small_cfg().with_replication(1);
    let e = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 1).unwrap_err();
    assert!(e.to_string().contains("replicated"), "{e}");
    // 2F+1 acceptors need at least 2F+1 sites.
    let mut cfg = small_cfg().with_replication(4);
    cfg.num_sites = 8;
    let e = Simulation::run(&cfg, ProtocolSpec::PAXOS, 1).unwrap_err();
    assert!(e.to_string().contains("2F+1"), "{e}");
    // The read-only optimization is not modeled for replicated runs.
    let mut cfg = small_cfg().with_replication(1);
    cfg.read_only_optimization = true;
    let e = Simulation::run(&cfg, ProtocolSpec::PAXOS, 1).unwrap_err();
    assert!(e.to_string().contains("read-only"), "{e}");
}
