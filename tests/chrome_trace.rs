//! The Chrome trace-event exporter produces JSON that external viewers
//! (chrome://tracing, Perfetto) must be able to load. These tests parse
//! the export with a small hand-rolled JSON parser — the repository is
//! dependency-free, and round-tripping through an *independent* parser
//! is exactly the well-formedness guarantee the viewers need — and then
//! check the field mapping back against the recorded [`TraceEvent`]s.

use distcommit::db::config::{FailureConfig, SystemConfig};
use distcommit::db::engine::{chrome_trace_json, ChromeStreamSink, Simulation, TraceEvent};
use distcommit::proto::ProtocolSpec;

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (test-only).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("truncated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] , found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected , or }} , found {other:?}")),
            }
        }
    }
}

fn parse_json(s: &str) -> Json {
    let mut p = Parser::new(s);
    let v = p.value().expect("export must be well-formed JSON");
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}

// ---------------------------------------------------------------------
// The actual exporter tests.
// ---------------------------------------------------------------------

fn traced_run() -> (distcommit::db::engine::Trace, String) {
    let cfg = SystemConfig::paper_baseline().with_run_length(10, 60);
    let (_, trace) =
        Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 0xC0FFEE, 3).expect("valid config");
    let json = chrome_trace_json(&trace);
    (trace, json)
}

/// Events carrying a timestamp, i.e. everything except `ph:"M"`.
fn timed_events(doc: &Json) -> Vec<&Json> {
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("missing traceEvents array");
    };
    events
        .iter()
        .filter(|e| e.get("ph").map(Json::as_str) != Some("M"))
        .collect()
}

#[test]
fn export_round_trips_through_an_independent_parser() {
    let (trace, json) = traced_run();
    let doc = parse_json(&json);
    assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), "ms");
    let timed = timed_events(&doc);
    assert!(
        timed.len() >= trace.events.len() / 2,
        "export dropped events: {} timed records from {} trace events",
        timed.len(),
        trace.events.len()
    );
    // Every record has the mandatory fields with the right types.
    for e in &timed {
        let ph = e.get("ph").expect("ph").as_str();
        assert!(matches!(ph, "i" | "X"), "unexpected phase {ph:?}");
        assert!(e.get("ts").expect("ts").as_num() >= 0.0);
        assert!(e.get("pid").expect("pid").as_num() >= 0.0);
        assert!(e.get("tid").expect("tid").as_num() >= 0.0);
        assert!(!e.get("name").expect("name").as_str().is_empty());
        if ph == "X" {
            assert!(e.get("dur").expect("complete events carry dur").as_num() >= 0.0);
        } else {
            assert_eq!(e.get("s").expect("instant scope").as_str(), "t");
        }
    }
}

#[test]
fn events_are_emitted_in_completion_order() {
    // The exporter streams records as events complete: instants at
    // their own timestamp, X records when their LogDone arrives (ts
    // holds the earlier *issue* time, so X records may sort before
    // instants already written). The invariant that makes single-pass
    // streaming possible — and that Chrome/Perfetto rely on not at
    // all, since they sort on load — is that each record's *end* time
    // (ts, or ts+dur for X) never decreases.
    let (_, json) = traced_run();
    let doc = parse_json(&json);
    let ends: Vec<f64> = timed_events(&doc)
        .iter()
        .map(|e| e.get("ts").unwrap().as_num() + e.get("dur").map(Json::as_num).unwrap_or(0.0))
        .collect();
    assert!(!ends.is_empty());
    assert!(
        ends.windows(2).all(|w| w[0] <= w[1]),
        "completion times not ascending"
    );
}

#[test]
fn fields_map_from_trace_events() {
    let (trace, json) = traced_run();
    let doc = parse_json(&json);
    let timed = timed_events(&doc);

    // pid = transaction id: the set of pids equals the traced txn set.
    let mut pids: Vec<u64> = timed
        .iter()
        .map(|e| e.get("pid").unwrap().as_num() as u64)
        .collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids, trace.txns(), "pid set != traced transaction ids");

    // Each Send maps to an instant with tid = sending site and ts = at.
    for ev in &trace.events {
        if let TraceEvent::Send { at, txn, from, .. } = ev {
            assert!(
                timed.iter().any(|e| e.get("ph").unwrap().as_str() == "i"
                    && e.get("ts").unwrap().as_num() as u64 == at.0
                    && e.get("pid").unwrap().as_num() as u64 == *txn
                    && e.get("tid").unwrap().as_num() as u64 == *from as u64),
                "no instant record for send {ev:?}"
            );
        }
    }

    // Each ForceLog/LogDone pair maps to one complete event whose ts is
    // the issue time and whose duration spans to the durable time.
    let (mut forces, mut completes) = (0, 0);
    for ev in &trace.events {
        if matches!(ev, TraceEvent::ForceLog { .. }) {
            forces += 1;
        }
    }
    for e in &timed {
        if e.get("ph").unwrap().as_str() == "X" {
            completes += 1;
        }
    }
    assert_eq!(completes, forces, "every forced write becomes one X event");

    // Metadata names every transaction lane.
    let Some(Json::Arr(all)) = doc.get("traceEvents") else {
        unreachable!()
    };
    for txn in trace.txns() {
        assert!(
            all.iter()
                .any(|e| e.get("ph").map(Json::as_str) == Some("M")
                    && e.get("pid").unwrap().as_num() as u64 == txn
                    && e.get("args").and_then(|a| a.get("name")).map(Json::as_str)
                        == Some(&format!("txn {txn}"))),
            "missing process_name metadata for txn {txn}"
        );
    }
}

/// A scratch file in the target-adjacent temp dir, removed on drop so
/// failed assertions don't leak files between runs.
struct TempFile(std::path::PathBuf);

impl TempFile {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("distcommit-{}-{name}", std::process::id()));
        TempFile(p)
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn streaming_sink_matches_buffered_export_byte_for_byte() {
    let cfg = SystemConfig::paper_baseline().with_run_length(10, 60);

    let (_, trace) =
        Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 0xC0FFEE, 3).expect("valid config");
    let buffered = chrome_trace_json(&trace);

    let tmp = TempFile::new("stream-identity.json");
    let sink = ChromeStreamSink::create(&tmp.0).expect("create temp file");
    let (_, sink) = Simulation::run_with_sink(&cfg, ProtocolSpec::TWO_PC, 0xC0FFEE, 3, sink)
        .expect("valid config");
    sink.into_result().expect("no I/O errors");
    let streamed = std::fs::read_to_string(&tmp.0).expect("read streamed trace");

    assert_eq!(
        buffered, streamed,
        "streaming and buffered exports must be byte-identical for the same seed"
    );
}

#[test]
fn long_faulty_streaming_run_stays_bounded_and_valid() {
    // 10× the length of the buffered-trace tests above, with every
    // fault class enabled — crashes and retransmissions leave forced
    // writes in flight, which is exactly what the open-force list must
    // keep bounded.
    let cfg = SystemConfig::paper_baseline()
        .with_run_length(0, 600)
        .with_failures(
            "mc=0.02,cc=0.01,loss=0.02"
                .parse::<FailureConfig>()
                .expect("valid fault spec"),
        );

    let tmp = TempFile::new("stream-long.json");
    let sink = ChromeStreamSink::create(&tmp.0).expect("create temp file");
    let (report, sink) = Simulation::run_with_sink(&cfg, ProtocolSpec::THREE_PC, 7, u64::MAX, sink)
        .expect("valid config");
    assert!(report.committed >= 600);

    // Memory boundedness: the only state the streamer holds per event
    // is the open-force list, whose high-water mark is a small multiple
    // of the in-flight transactions (MPL × sites) — not the run length.
    let high_water = sink.max_open_forces();
    let events = sink.into_result().expect("no I/O errors");
    assert!(events > 1_000, "long run produced only {events} events");
    let in_flight = (cfg.mpl as usize) * cfg.num_sites;
    assert!(
        high_water <= 4 * in_flight,
        "open-force high water {high_water} not bounded by in-flight txns ({in_flight})"
    );

    // The streamed file is still well-formed Chrome JSON end to end.
    let streamed = std::fs::read_to_string(&tmp.0).expect("read streamed trace");
    let doc = parse_json(&streamed);
    assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), "ms");
    assert!(timed_events(&doc).len() > 1_000);
}

#[test]
fn parser_rejects_malformed_json() {
    // Sanity-check the checker itself: these must NOT parse.
    for bad in [
        "{\"a\":1,}",
        "{\"a\" 1}",
        "[1,2",
        "{\"a\":}",
        "\"unterminated",
        "{\"traceEvents\":[]} trailing",
    ] {
        let mut p = Parser::new(bad);
        let ok = p.value().is_ok() && {
            p.skip_ws();
            p.pos == p.bytes.len()
        };
        assert!(!ok, "parser accepted malformed input {bad:?}");
    }
}
