//! Failure injection: quantifying the blocking (2PC) vs non-blocking
//! (3PC) distinction the paper argues qualitatively in §2.4. A crashed
//! blocking master strands its prepared cohorts — and their update
//! locks — until recovery; 3PC's cohorts terminate on their own after
//! a short detection timeout.

use distcommit::db::config::{FailureConfig, SystemConfig};
use distcommit::db::engine::{MsgLabel, Simulation, TraceEvent};
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;
use simkernel::SimDuration;

fn failing_cfg(p: f64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 4;
    cfg.failures = Some(FailureConfig::master_crashes(p));
    cfg.run.warmup_transactions = 100;
    cfg.run.measured_transactions = 1_000;
    cfg
}

/// CI's failure matrix re-runs this suite under shifted seeds
/// (`DISTCOMMIT_TEST_SEED_OFFSET`); every assertion here is structural
/// and must hold for any seed.
fn seed_offset() -> u64 {
    std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn run(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> SimReport {
    Simulation::run(cfg, spec, seed + seed_offset()).expect("valid config")
}

#[test]
fn crashes_happen_at_the_configured_rate() {
    // Average the observed rate over several independent seeds: a
    // single run's rate is itself a random variable with noticeable
    // variance at 1 000 transactions, so a per-seed tolerance band is
    // either flaky or vacuous. The trials counter is the exact
    // denominator — every committed decision point rolls once.
    let mut crashes = 0u64;
    let mut trials = 0u64;
    for seed in 1..=4 {
        let r = run(&failing_cfg(0.05), ProtocolSpec::THREE_PC, seed);
        assert!(r.faults.master_crash_trials > 0);
        crashes += r.faults.master_crashes;
        trials += r.faults.master_crash_trials;
    }
    let rate = crashes as f64 / trials as f64;
    assert!(
        (rate - 0.05).abs() < 0.01,
        "crash rate {rate:.3} over {trials} trials, expected ≈ 0.05"
    );
}

#[test]
fn no_failures_without_the_config() {
    let mut cfg = failing_cfg(0.05);
    cfg.failures = None;
    let r = run(&cfg, ProtocolSpec::TWO_PC, 2);
    assert_eq!(r.faults.master_crashes, 0);
}

#[test]
fn blocking_protocols_stall_with_the_crashed_master() {
    // Even a 1% crash rate with 5 s recoveries hurts 2PC badly: every
    // crash strands ~12 update locks for 5 seconds.
    let clean = {
        let mut c = failing_cfg(0.0);
        c.failures = None;
        run(&c, ProtocolSpec::TWO_PC, 3)
    };
    let crashed = run(&failing_cfg(0.01), ProtocolSpec::TWO_PC, 3);
    assert!(crashed.faults.master_crashes > 0);
    assert!(
        crashed.throughput < clean.throughput * 0.85,
        "1% crashes should cost 2PC dearly ({:.2} vs {:.2})",
        crashed.throughput,
        clean.throughput
    );
    assert!(crashed.block_ratio > clean.block_ratio);
}

#[test]
fn three_pc_keeps_going_through_crashes() {
    let two_pc = run(&failing_cfg(0.01), ProtocolSpec::TWO_PC, 4);
    let three_pc = run(&failing_cfg(0.01), ProtocolSpec::THREE_PC, 4);
    // In the failure-free experiments 3PC trails 2PC by ~20%; under
    // even rare failures the ordering flips — the paper's §2.4
    // argument, now with a number attached.
    assert!(
        three_pc.throughput > two_pc.throughput,
        "non-blocking termination should beat blocked recovery ({:.2} vs {:.2})",
        three_pc.throughput,
        two_pc.throughput
    );
    // And the non-blocking win grows with the crash rate.
    let two_pc_heavy = run(&failing_cfg(0.05), ProtocolSpec::TWO_PC, 4);
    let three_pc_heavy = run(&failing_cfg(0.05), ProtocolSpec::THREE_PC, 4);
    assert!(
        three_pc_heavy.throughput / two_pc_heavy.throughput
            > three_pc.throughput / two_pc.throughput,
        "the non-blocking advantage should widen with the crash rate"
    );
}

#[test]
fn opt_3pc_is_the_win_win_under_failures() {
    // §5.6's "win-win" plus failures: OPT-3PC should beat plain 2PC
    // both with and without crashes.
    let crashed_2pc = run(&failing_cfg(0.02), ProtocolSpec::TWO_PC, 5);
    let crashed_opt3 = run(&failing_cfg(0.02), ProtocolSpec::OPT_3PC, 5);
    assert!(
        crashed_opt3.throughput > crashed_2pc.throughput,
        "OPT-3PC ({:.2}) should dominate 2PC ({:.2}) once failures exist",
        crashed_opt3.throughput,
        crashed_2pc.throughput
    );
}

#[test]
fn termination_choreography() {
    // Force a crash on (nearly) every transaction and inspect the
    // termination protocol of the first crashed one.
    let mut cfg = failing_cfg(1.0);
    cfg.db_size = 80_000;
    cfg.mpl = 1;
    cfg.run.warmup_transactions = 0;
    cfg.run.measured_transactions = 20;
    let (report, tr) =
        Simulation::run_traced(&cfg, ProtocolSpec::THREE_PC, 6 + seed_offset(), 5).unwrap();
    // p = 1.0: every committed transaction crashed first; up to one
    // crashed-but-unterminated transaction per site may straddle the
    // window end.
    assert!(report.faults.master_crashes >= report.committed);
    assert!(
        report.faults.master_crashes - report.committed <= 8,
        "crashes {} vs commits {}",
        report.faults.master_crashes,
        report.committed
    );

    let crashed: Vec<u64> = tr
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::MasterCrashed { txn, .. } => Some(*txn),
            _ => None,
        })
        .collect();
    assert!(!crashed.is_empty());
    let txn = crashed[0];
    // Termination started with an elected coordinator.
    assert!(tr
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::TerminationStarted { txn: t, .. } if *t == txn)));
    // The coordinator polled the two other cohorts and they replied.
    assert_eq!(tr.all_sends(txn, MsgLabel::TermStateReq), 2);
    assert_eq!(tr.all_sends(txn, MsgLabel::TermStateRep), 2);
    // The transaction still committed (all cohorts were precommitted).
    assert!(tr
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::Decided { txn: t, commit: true, .. } if *t == txn)));
}

#[test]
fn blocking_recovery_resumes_and_commits() {
    let mut cfg = failing_cfg(1.0);
    cfg.db_size = 80_000;
    cfg.mpl = 1;
    cfg.run.warmup_transactions = 0;
    cfg.run.measured_transactions = 10;
    let (report, tr) =
        Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 7 + seed_offset(), 3).unwrap();
    assert!(report.faults.master_crashes > 0);
    // Each crashed transaction eventually decided commit (after
    // recovery) and the response time shows the 5 s stall.
    assert!(
        report.mean_response_s > 5.0,
        "got {:.2}s",
        report.mean_response_s
    );
    let txn = 1;
    assert!(tr
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::MasterCrashed { txn: t, .. } if *t == txn)));
    assert!(tr
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::Decided { txn: t, commit: true, .. } if *t == txn)));
    // No termination machinery for a blocking protocol.
    assert_eq!(tr.all_sends(txn, MsgLabel::TermStateReq), 0);
}

fn lossy_cfg(p: f64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 4;
    cfg.failures = Some(FailureConfig {
        msg_loss_prob: p,
        ..FailureConfig::default()
    });
    cfg.run.warmup_transactions = 100;
    cfg.run.measured_transactions = 1_000;
    cfg
}

#[test]
fn message_loss_hits_both_directions() {
    // Loss applies to the whole commit dialogue, not just the
    // master's requests: cohort replies (votes, acks, WORKDONE) roll
    // the same loss die, and each lost leg is repaired by a
    // retransmission timer on whichever side sent the request.
    let mut cfg = lossy_cfg(0.1);
    cfg.run.warmup_transactions = 0;
    cfg.run.measured_transactions = 300;
    let (report, tr) =
        Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 9 + seed_offset(), 300).unwrap();
    assert!(report.faults.messages_lost > 0);
    assert!(report.faults.retransmissions > 0);

    let lost: Vec<MsgLabel> = tr
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::MsgLost { label, .. } => Some(*label),
            _ => None,
        })
        .collect();
    let requests = [MsgLabel::Prepare, MsgLabel::DecisionCommit];
    let replies = [MsgLabel::VoteYes, MsgLabel::Ack, MsgLabel::WorkDone];
    assert!(
        lost.iter().any(|l| requests.contains(l)),
        "no master→cohort request lost in {} losses",
        lost.len()
    );
    assert!(
        lost.iter().any(|l| replies.contains(l)),
        "no cohort→master reply lost in {} losses",
        lost.len()
    );

    // The cohort side owns the WORKDONE timer: a lost WORKDONE shows
    // up as a retransmission stamped with that label.
    assert!(tr.events.iter().any(|e| matches!(
        e,
        TraceEvent::Retransmitted {
            label: MsgLabel::WorkDone,
            ..
        }
    )));
}

#[test]
fn loss_heavy_runs_complete_for_every_protocol() {
    // Termination argument under loss: requests re-arm their timer
    // until the awaited reply is receipted, and the final
    // (escalated) attempt plus its reply are loss-exempt — so every
    // protocol drives each transaction to a decision and the run
    // reaches its measured-commit target.
    let mut cfg = lossy_cfg(0.2);
    cfg.run.warmup_transactions = 50;
    cfg.run.measured_transactions = 300;
    // CENT is absent: fully centralized execution sends no remote
    // transfers, so there is nothing to lose.
    for spec in [
        ProtocolSpec::DPCC,
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_3PC,
    ] {
        let r = run(&cfg, spec, 10);
        assert_eq!(r.committed, 300, "{} under 20% loss", spec.name());
        assert!(r.faults.messages_lost > 0, "{}", spec.name());
        assert!(r.faults.retransmissions > 0, "{}", spec.name());
    }
}

#[test]
fn loss_and_crashes_compose() {
    // The worst of the matrix: replies lost while masters and cohorts
    // crash. The run must still complete deterministically.
    let mut cfg = lossy_cfg(0.1);
    cfg.failures = Some(FailureConfig {
        msg_loss_prob: 0.1,
        master_crash_prob: 0.02,
        cohort_crash_prob: 0.02,
        ..FailureConfig::default()
    });
    cfg.run.warmup_transactions = 50;
    cfg.run.measured_transactions = 300;
    for spec in [ProtocolSpec::TWO_PC, ProtocolSpec::THREE_PC] {
        let a = run(&cfg, spec, 11);
        let b = run(&cfg, spec, 11);
        assert_eq!(a.committed, 300, "{}", spec.name());
        assert!(a.faults.messages_lost > 0);
        assert_eq!(a.events, b.events, "{} not deterministic", spec.name());
        assert_eq!(a.faults.messages_lost, b.faults.messages_lost);
    }
}

#[test]
fn failures_are_deterministic() {
    let cfg = failing_cfg(0.03);
    let a = run(&cfg, ProtocolSpec::OPT_3PC, 8);
    let b = run(&cfg, ProtocolSpec::OPT_3PC, 8);
    assert_eq!(a.events, b.events);
    assert_eq!(a.faults.master_crashes, b.faults.master_crashes);
    assert!((a.throughput - b.throughput).abs() < 1e-12);
}

#[test]
fn invalid_failure_configs_are_rejected() {
    let mut cfg = failing_cfg(1.5);
    assert!(cfg.validate().is_err());
    cfg = failing_cfg(0.5);
    cfg.failures = Some(FailureConfig {
        master_crash_prob: 0.5,
        recovery_time: SimDuration::ZERO,
        ..FailureConfig::default()
    });
    assert!(cfg.validate().is_err());
}
