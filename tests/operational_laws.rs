//! Every simulation run must obey the operational laws of queueing
//! theory — model-independent identities that hold for any
//! work-conserving system. A violation would mean the engine loses or
//! invents work. This is the strongest black-box validation the
//! simulator has.

use distcommit::db::analysis::{check_laws, ServiceDemands};
use distcommit::db::config::SystemConfig;
use distcommit::db::engine::Simulation;
use distcommit::proto::ProtocolSpec;

fn run(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> distcommit::db::metrics::SimReport {
    let mut cfg = cfg.clone();
    cfg.run.warmup_transactions = 200;
    cfg.run.measured_transactions = 2_000;
    Simulation::run(&cfg, spec, seed).expect("valid config")
}

/// Utilization law `U_k = X · D_k`, per resource class, for every
/// protocol, in a conflict-light configuration (aborted work would
/// add unmodeled demand).
#[test]
fn utilization_laws_hold_for_every_protocol() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.db_size = 80_000; // negligible aborts => demands are exact
    cfg.mpl = 4;
    for spec in [
        ProtocolSpec::CENT,
        ProtocolSpec::DPCC,
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::LINEAR_2PC,
    ] {
        let r = run(&cfg, spec, 42);
        assert!(
            r.abort_fraction() < 0.005,
            "{}: too many aborts for the law check",
            spec.name()
        );
        for check in check_laws(&cfg, spec, &r) {
            if check.law.starts_with("utilization") {
                assert!(
                    check.relative_error() < 0.05,
                    "{}: {} predicted {:.4}, observed {:.4} ({:.1}% off)",
                    spec.name(),
                    check.law,
                    check.predicted,
                    check.observed,
                    check.relative_error() * 100.0
                );
            }
        }
    }
}

/// Little's law `N = X · R` over the full population, when no
/// transaction ever leaves the system (no aborts ⇒ no backoff time
/// spent outside).
#[test]
fn littles_law_holds_without_aborts() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.db_size = 80_000;
    cfg.mpl = 6;
    let r = run(&cfg, ProtocolSpec::TWO_PC, 7);
    assert!(r.abort_fraction() < 0.005);
    let n_predicted = r.throughput * r.mean_response_s;
    let n_actual = (cfg.mpl as usize * cfg.num_sites) as f64;
    let rel = (n_predicted - n_actual).abs() / n_actual;
    assert!(
        rel < 0.05,
        "Little's law: X*R = {n_predicted:.2}, population = {n_actual} ({:.1}% off)",
        rel * 100.0
    );
}

/// The measured throughput never exceeds the demand-based ceiling, and
/// approaches it at the peak for the bottleneck-bound baselines.
#[test]
fn throughput_respects_the_demand_bound() {
    let cfg = SystemConfig::paper_baseline();
    for spec in [
        ProtocolSpec::CENT,
        ProtocolSpec::DPCC,
        ProtocolSpec::TWO_PC,
        ProtocolSpec::THREE_PC,
    ] {
        let bound = ServiceDemands::committed(&cfg, spec).throughput_bound(&cfg);
        let mut best: f64 = 0.0;
        for mpl in [2u32, 4, 6] {
            let mut c = cfg.clone();
            c.mpl = mpl;
            best = best.max(run(&c, spec, 9).throughput);
        }
        assert!(
            best <= bound * 1.02,
            "{}: measured peak {best:.2} exceeds demand bound {bound:.2}",
            spec.name()
        );
        assert!(
            best > bound * 0.5,
            "{}: peak {best:.2} suspiciously far below the bound {bound:.2}",
            spec.name()
        );
    }
}

/// The analytic bottleneck prediction matches the measured utilization
/// ordering.
#[test]
fn predicted_bottleneck_is_the_busiest_resource() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.db_size = 80_000;
    cfg.mpl = 6;
    for spec in [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::CENT,
        ProtocolSpec::THREE_PC,
    ] {
        let predicted = ServiceDemands::committed(&cfg, spec).bottleneck(&cfg);
        let r = run(&cfg, spec, 10);
        let u = r.utilizations;
        let measured = if u.cpu >= u.data_disk && u.cpu >= u.log_disk {
            "cpu"
        } else if u.data_disk >= u.log_disk {
            "data disk"
        } else {
            "log disk"
        };
        assert_eq!(predicted, measured, "{}: {u:?}", spec.name());
    }
}
