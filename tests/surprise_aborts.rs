//! §5.7: "surprise aborts" — cohorts vote NO in the commit phase.
//! Verifies OPT's robustness claim, the bounded abort chain, and PA's
//! abort-side savings, plus the regression for the borrow-edge shelf
//! hang found during development.

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::Simulation;
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;

fn run_with_aborts(spec: ProtocolSpec, p: f64, seed: u64) -> SimReport {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 4;
    cfg.cohort_abort_prob = p;
    cfg.run.warmup_transactions = 200;
    cfg.run.measured_transactions = 1_500;
    Simulation::run(&cfg, spec, seed).expect("valid config")
}

/// The abort machinery actually fires at the configured rate: a cohort
/// NO-vote probability of p makes a d-cohort transaction abort with
/// probability 1-(1-p)^d per attempt.
#[test]
fn surprise_abort_rate_matches_configuration() {
    let r = run_with_aborts(ProtocolSpec::TWO_PC, 0.05, 1);
    let attempts = r.committed + r.total_aborts();
    let measured = r.aborted_surprise as f64 / attempts as f64;
    let expected = 1.0 - 0.95f64.powi(3);
    assert!(
        (measured - expected).abs() < 0.03,
        "measured surprise rate {measured:.3}, expected ≈ {expected:.3}"
    );
}

/// Without OPT there are no borrower-cascade aborts, ever.
#[test]
fn no_cascades_without_lending() {
    for spec in [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::THREE_PC,
    ] {
        let r = run_with_aborts(spec, 0.10, 2);
        assert_eq!(
            r.aborted_borrower,
            0,
            "{} produced cascade aborts",
            spec.name()
        );
        assert_eq!(r.borrow_ratio, 0.0);
    }
}

/// With OPT, lender aborts kill their borrowers — but the chain length
/// is one, so cascades stay a modest fraction of surprise aborts rather
/// than exploding.
#[test]
fn opt_cascades_exist_but_stay_bounded() {
    let r = run_with_aborts(ProtocolSpec::OPT_2PC, 0.10, 3);
    assert!(
        r.aborted_borrower > 0,
        "expected some borrower cascades at p = 0.10"
    );
    assert!(
        r.aborted_borrower < r.aborted_surprise,
        "length-one chains: cascades ({}) must stay below surprise aborts ({})",
        r.aborted_borrower,
        r.aborted_surprise
    );
}

/// The paper's robustness bound: at ~15% transaction aborts (cohort
/// p = 0.05) OPT's throughput is still comparable to 2PC's; at ~27%
/// (p = 0.10) it falls clearly behind.
#[test]
fn opt_robust_to_fifteen_percent_aborts() {
    let two_pc = run_with_aborts(ProtocolSpec::TWO_PC, 0.05, 4);
    let opt = run_with_aborts(ProtocolSpec::OPT_2PC, 0.05, 4);
    assert!(
        opt.throughput > two_pc.throughput * 0.85,
        "OPT ({:.1}) should stay within ~15% of 2PC ({:.1}) at the 15% abort level",
        opt.throughput,
        two_pc.throughput
    );
}

#[test]
fn opt_degrades_past_fifteen_percent() {
    let two_pc = run_with_aborts(ProtocolSpec::TWO_PC, 0.10, 5);
    let opt = run_with_aborts(ProtocolSpec::OPT_2PC, 0.10, 5);
    assert!(
        opt.throughput < two_pc.throughput,
        "at ~27% aborts OPT's optimism should be misplaced ({:.1} vs {:.1})",
        opt.throughput,
        two_pc.throughput
    );
}

/// PA's savings show up in the abort-side forced writes (per committed
/// transaction, PA logs strictly less than 2PC once aborts occur).
#[test]
fn pa_saves_forced_writes_under_aborts() {
    let two_pc = run_with_aborts(ProtocolSpec::TWO_PC, 0.10, 6);
    let pa = run_with_aborts(ProtocolSpec::PA, 0.10, 6);
    assert!(
        pa.forced_writes_per_commit < two_pc.forced_writes_per_commit - 0.5,
        "PA ({:.2}) should log clearly less than 2PC ({:.2}) per commit at 27% aborts",
        pa.forced_writes_per_commit,
        two_pc.forced_writes_per_commit
    );
    // §5.7 quotes ~8.8 (2PC) vs ~7.7 (PA) forced writes per committed
    // transaction at the 27% level; pin loosely.
    assert!(
        (7.5..10.5).contains(&two_pc.forced_writes_per_commit),
        "2PC forced writes per commit at 27%: {:.2}",
        two_pc.forced_writes_per_commit
    );
    assert!(
        (6.8..9.0).contains(&pa.forced_writes_per_commit),
        "PA forced writes per commit at 27%: {:.2}",
        pa.forced_writes_per_commit
    );
}

/// OPT-PA composes both optimizations and runs clean at high abort
/// rates — this is also the regression test for the shelf-hang bug
/// (dangling borrow edges created while a deciding lender was being
/// torn down), which drained the calendar mid-run.
#[test]
fn opt_variants_survive_heavy_abort_rates() {
    for spec in [
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_PA,
        ProtocolSpec::OPT_PC,
        ProtocolSpec::OPT_3PC,
    ] {
        let r = run_with_aborts(spec, 0.10, 7);
        assert_eq!(r.committed, 1_500, "{} did not finish its run", spec.name());
        assert_eq!(r.throughput_ci.batches, 10, "{} lost batches", spec.name());
    }
}

/// Aborted transactions eventually commit (the closed loop restarts
/// them), so the system makes progress even at absurd abort rates.
#[test]
fn progress_at_extreme_abort_rates() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 2;
    cfg.cohort_abort_prob = 0.30; // ~66% of attempts abort
    cfg.run.warmup_transactions = 50;
    cfg.run.measured_transactions = 300;
    let r = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 8).unwrap();
    assert_eq!(r.committed, 300);
    assert!(r.abort_fraction() > 0.5);
}
