//! Reproducibility guarantees: a run is a pure function of
//! (configuration, protocol, seed).

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::Simulation;
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;

fn small_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 4;
    cfg.run.warmup_transactions = 100;
    cfg.run.measured_transactions = 600;
    cfg
}

fn fingerprint(r: &SimReport) -> (u64, u64, u64, u64, String) {
    (
        r.committed,
        r.aborted_deadlock,
        r.aborted_surprise,
        r.events,
        format!(
            "{:.9}|{:.9}|{:.9}|{:.9}|{:.9}",
            r.throughput, r.mean_response_s, r.block_ratio, r.borrow_ratio, r.sim_seconds
        ),
    )
}

#[test]
fn same_seed_reproduces_every_protocol_exactly() {
    let cfg = small_cfg();
    for spec in ProtocolSpec::ALL {
        let a = Simulation::run(&cfg, spec, 1234).unwrap();
        let b = Simulation::run(&cfg, spec, 1234).unwrap();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} diverged across runs",
            spec.name()
        );
    }
}

#[test]
fn same_seed_reproduces_with_surprise_aborts_and_opt() {
    // The regression surface for the borrow-edge bug: lending + aborts.
    let mut cfg = small_cfg();
    cfg.cohort_abort_prob = 0.08;
    for spec in [
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_3PC,
        ProtocolSpec::OPT_PA,
    ] {
        let a = Simulation::run(&cfg, spec, 77).unwrap();
        let b = Simulation::run(&cfg, spec, 77).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b), "{} diverged", spec.name());
    }
}

#[test]
fn different_seeds_give_statistically_close_but_distinct_runs() {
    let cfg = small_cfg();
    let a = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 1).unwrap();
    let b = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 2).unwrap();
    assert_ne!(
        a.events, b.events,
        "different seeds should not coincide event-for-event"
    );
    // ... but estimate the same steady state (generous 25% band for
    // short runs).
    let rel = (a.throughput - b.throughput).abs() / a.throughput;
    assert!(
        rel < 0.25,
        "throughput across seeds differs by {:.0}%",
        rel * 100.0
    );
}

#[test]
fn pa_reduces_to_2pc_without_aborts() {
    // §5.2: "In the absence of any other source of aborts, PA reduces
    // to 2PC and performs identically." The schedules differ only on
    // abort paths, so with no NO votes the two runs must be
    // event-for-event identical.
    let cfg = small_cfg();
    let two_pc = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 99).unwrap();
    let pa = Simulation::run(&cfg, ProtocolSpec::PA, 99).unwrap();
    assert_eq!(pa.aborted_surprise, 0);
    assert_eq!(two_pc.events, pa.events);
    assert_eq!(two_pc.committed, pa.committed);
    assert!((two_pc.throughput - pa.throughput).abs() < 1e-9);
    assert!((two_pc.mean_response_s - pa.mean_response_s).abs() < 1e-12);
}

/// Exact cross-check for the Topology layer: a degenerate 1-region
/// topology (zero latencies, no jitter, no hot site) must render
/// byte-identical reports to today's flat-latency model — the engine's
/// zero-latency fast path keeps the event stream unchanged, and the
/// topology's dedicated RNG stream never touches the workload stream.
/// This is the golden-compatible regression guard for the wire-latency
/// code: any accidental per-message draw or extra event breaks it.
#[test]
fn degenerate_topology_is_byte_identical_to_no_topology() {
    use distcommit::db::config::Topology;
    use distcommit::db::metrics::ReportFormat;
    let env_offset = std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    for spec in [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
    ] {
        let plain_cfg = small_cfg();
        let mut degen_cfg = small_cfg();
        degen_cfg.topology = Some(Topology::default());
        let plain = Simulation::run(&plain_cfg, spec, 42 + env_offset).unwrap();
        let degen = Simulation::run(&degen_cfg, spec, 42 + env_offset).unwrap();
        assert_eq!(
            plain.render(ReportFormat::Json),
            degen.render(ReportFormat::Json),
            "{}: degenerate topology perturbed the run",
            spec.name()
        );
    }
    // Not vacuous: a topology with real WAN latency does change the run.
    let mut wan_cfg = small_cfg();
    wan_cfg.topology = Some("regions=4,wan-ms=40".parse().unwrap());
    let plain = Simulation::run(&small_cfg(), ProtocolSpec::TWO_PC, 42 + env_offset).unwrap();
    let wan = Simulation::run(&wan_cfg, ProtocolSpec::TWO_PC, 42 + env_offset).unwrap();
    assert_ne!(plain.events, wan.events);
    assert!(
        wan.mean_response_s > plain.mean_response_s,
        "WAN latency must lengthen responses ({:.4}s vs {:.4}s)",
        wan.mean_response_s,
        plain.mean_response_s
    );
}
