//! The flamegraph fold (`distcommit fold`): collapsed-stack output
//! must be deterministic — byte-identical across repeated runs and
//! across worker-thread counts — and must surface the protocol
//! differences the paper talks about (3PC's extra round and forced
//! write show up as vote-phase frames 2PC does not have).

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::{FoldSink, Simulation};
use distcommit::db::runner::run_ordered;
use distcommit::proto::ProtocolSpec;

fn fold_run(protocol: ProtocolSpec, seed: u64) -> String {
    let cfg = SystemConfig::paper_baseline().with_run_length(10, 80);
    let (_, fold) = Simulation::run_with_sink(
        &cfg,
        protocol,
        seed,
        u64::MAX,
        FoldSink::new(protocol.name()),
    )
    .expect("valid config");
    fold.render()
}

#[test]
fn fold_output_is_byte_identical_across_worker_counts() {
    let seeds: Vec<u64> = (0..6).collect();
    let serial = run_ordered(&seeds, 1, |&s| fold_run(ProtocolSpec::TWO_PC, s));
    let parallel = run_ordered(&seeds, 4, |&s| fold_run(ProtocolSpec::TWO_PC, s));
    assert_eq!(serial, parallel);
    // And repeated runs of the same seed agree with themselves.
    assert_eq!(serial[0], fold_run(ProtocolSpec::TWO_PC, 0));
}

#[test]
fn fold_lines_are_parseable_collapsed_stacks() {
    let rendered = fold_run(ProtocolSpec::TWO_PC, 42);
    assert!(!rendered.is_empty());
    let lines: Vec<&str> = rendered.lines().collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted, "stacks must render sorted");
    for line in &lines {
        let (stack, weight) = line.rsplit_once(' ').expect("`stack weight` shape");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames[0], "2PC", "root frame is the protocol");
        assert!(
            matches!(frames[1], "exec" | "vote" | "ack"),
            "phase frame, got {}",
            frames[1]
        );
        assert!(weight.parse::<u64>().unwrap() > 0);
    }
}

#[test]
fn three_pc_fold_has_precommit_frames_two_pc_lacks() {
    let two = fold_run(ProtocolSpec::TWO_PC, 42);
    let three = fold_run(ProtocolSpec::THREE_PC, 42);
    // 3PC's extra phase: the precommit forced writes and PRECOMMIT
    // acks appear as distinct vote-phase frames. (The PRECOMMIT sends
    // themselves are back-to-back instants, so their intervals are
    // zero-width and fold away.)
    assert!(three.contains("force CohortPrecommit"), "{three}");
    assert!(three.contains("force MasterPrecommit"), "{three}");
    assert!(three.contains("send PreAck"), "{three}");
    assert!(!two.contains("Precommit"), "{two}");
    assert!(!two.contains("PreAck"), "{two}");
    // Both protocols spend time in all three phases.
    for phase in [";exec;", ";vote;", ";ack;"] {
        assert!(two.contains(phase), "2PC missing {phase}");
        assert!(three.contains(phase), "3PC missing {phase}");
    }
}
