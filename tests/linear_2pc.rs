//! Linear (chained) 2PC — the §2.5 variant, implemented as an
//! extension: PREPARE rides down a chain of cohorts and the decision
//! rides back, halving the commit messages at the price of serializing
//! the protocol. §3.2 singles it out as an OPT synergy case because
//! the chain stretches the prepared state of early cohorts.

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::{LogLabel, MsgLabel, Simulation, TraceEvent};
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;

fn conflict_free() -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.db_size = 80_000;
    cfg.mpl = 1;
    cfg.run.warmup_transactions = 50;
    cfg.run.measured_transactions = 500;
    cfg
}

fn run(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> SimReport {
    Simulation::run(cfg, spec, seed).expect("valid config")
}

#[test]
fn linear_overheads_match_the_analytic_model() {
    let r = run(&conflict_free(), ProtocolSpec::LINEAR_2PC, 1);
    assert_eq!(r.total_aborts(), 0);
    let expect = ProtocolSpec::LINEAR_2PC.committed_overheads(3);
    assert!((r.exec_messages_per_commit - expect.exec_messages as f64).abs() < 0.1);
    assert!(
        (r.commit_messages_per_commit - expect.commit_messages as f64).abs() < 0.1,
        "commit messages {:.2}, expected {}",
        r.commit_messages_per_commit,
        expect.commit_messages
    );
    assert!((r.forced_writes_per_commit - expect.forced_writes as f64).abs() < 0.15);
}

#[test]
fn linear_commit_choreography() {
    let (_, tr) = Simulation::run_traced(&conflict_free(), ProtocolSpec::LINEAR_2PC, 2, 1).unwrap();
    // Chain of 3: three ChainPrepare hops (one local), two backward
    // ChainDecision hops plus one local ChainBack.
    assert_eq!(tr.all_sends(1, MsgLabel::Prepare), 3);
    assert_eq!(tr.remote_sends(1, MsgLabel::Prepare), 2);
    assert_eq!(tr.all_sends(1, MsgLabel::DecisionCommit), 3);
    assert_eq!(tr.remote_sends(1, MsgLabel::DecisionCommit), 2);
    // No parallel-protocol machinery at all.
    assert_eq!(tr.all_sends(1, MsgLabel::VoteYes), 0);
    assert_eq!(tr.all_sends(1, MsgLabel::Ack), 0);
    // Same log records as 2PC.
    assert_eq!(tr.forced_writes(1, LogLabel::Prepare), 3);
    assert_eq!(tr.forced_writes(1, LogLabel::CohortCommit), 3);
    assert_eq!(tr.forced_writes(1, LogLabel::MasterCommit), 1);
    // The chain serializes: every prepare record precedes the first
    // cohort commit record (the turnaround at the chain's end).
    tr.check_order(
        |e| {
            matches!(
                e,
                TraceEvent::LogDone {
                    label: LogLabel::Prepare,
                    ..
                }
            )
        },
        |e| {
            matches!(
                e,
                TraceEvent::ForceLog {
                    label: LogLabel::CohortCommit,
                    ..
                }
            )
        },
    )
    .expect("all prepares before the first commit record");
    // And the master's record is the last of all.
    tr.check_order(
        |e| {
            matches!(
                e,
                TraceEvent::LogDone {
                    label: LogLabel::CohortCommit,
                    ..
                }
            )
        },
        |e| {
            matches!(
                e,
                TraceEvent::ForceLog {
                    label: LogLabel::MasterCommit,
                    ..
                }
            )
        },
    )
    .expect("master record after every cohort commit record");
}

#[test]
fn linear_abort_unwinds_the_chain() {
    let mut cfg = conflict_free();
    cfg.cohort_abort_prob = 0.5;
    let (report, tr) = Simulation::run_traced(&cfg, ProtocolSpec::LINEAR_2PC, 3, 300).unwrap();
    assert!(report.aborted_surprise > 0, "need some NO votes");
    // Find an aborted transaction and check its unwind.
    let mut checked = false;
    for txn in tr.txns() {
        let aborted = tr
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Aborted { txn: t, .. } if *t == txn));
        let no_vote_logs = tr.forced_writes(txn, LogLabel::NoVoteAbort);
        if aborted && no_vote_logs == 1 {
            // Prepared predecessors forced abort records; unreached
            // cohorts did not log anything.
            let prepared = tr.forced_writes(txn, LogLabel::Prepare);
            assert_eq!(
                tr.forced_writes(txn, LogLabel::CohortAbort),
                prepared,
                "txn {txn}"
            );
            assert_eq!(tr.forced_writes(txn, LogLabel::MasterAbort), 1, "txn {txn}");
            assert_eq!(
                tr.forced_writes(txn, LogLabel::CohortCommit),
                0,
                "txn {txn}"
            );
            checked = true;
            break;
        }
    }
    assert!(
        checked,
        "expected at least one single-veto abort in the trace"
    );
}

#[test]
fn linear_trades_messages_for_latency() {
    // Conflict-free and CPU-light: linear commits with half the commit
    // messages but a longer commit phase (the chain is sequential), so
    // its response time at MPL 1 is *worse* than parallel 2PC while its
    // message counts are better.
    let cfg = conflict_free();
    let par = run(&cfg, ProtocolSpec::TWO_PC, 4);
    let lin = run(&cfg, ProtocolSpec::LINEAR_2PC, 4);
    assert!(lin.commit_messages_per_commit < par.commit_messages_per_commit * 0.6);
    assert!(
        lin.mean_response_s > par.mean_response_s,
        "the chain must cost latency ({:.3}s vs {:.3}s)",
        lin.mean_response_s,
        par.mean_response_s
    );
}

#[test]
fn linear_can_win_when_cpus_saturate() {
    // At DistDegree 6 the parallel protocols drown the CPUs in message
    // processing (§5.5); linear 2PC halves that load.
    let mut cfg = SystemConfig::paper_baseline().higher_distribution();
    cfg.mpl = 8;
    cfg.run.warmup_transactions = 150;
    cfg.run.measured_transactions = 1_200;
    let par = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 5).unwrap();
    let lin = Simulation::run(&cfg, ProtocolSpec::LINEAR_2PC, 5).unwrap();
    assert!(par.utilizations.cpu > 0.7, "setup should be CPU-heavy");
    assert!(
        lin.utilizations.cpu < par.utilizations.cpu,
        "linear must relieve the CPUs ({:.2} vs {:.2})",
        lin.utilizations.cpu,
        par.utilizations.cpu
    );
}

#[test]
fn opt_linear_lends_more_than_opt_parallel() {
    // §3.2: the chain extends the prepared state, so OPT has more to
    // lend under linear 2PC than under parallel 2PC.
    let mut cfg = SystemConfig::pure_data_contention();
    cfg.mpl = 6;
    cfg.run.warmup_transactions = 150;
    cfg.run.measured_transactions = 1_200;
    let opt = Simulation::run(&cfg, ProtocolSpec::OPT_2PC, 6).unwrap();
    let opt_lin = Simulation::run(&cfg, ProtocolSpec::OPT_LINEAR_2PC, 6).unwrap();
    assert!(
        opt_lin.mean_prepared_time_s > opt.mean_prepared_time_s,
        "chained prepared state should last longer ({:.3}s vs {:.3}s)",
        opt_lin.mean_prepared_time_s,
        opt.mean_prepared_time_s
    );
    // Lending is substantial under both (the absolute borrow ratios are
    // close: the chain lends longer per cohort but also keeps fewer
    // transactions in their execution phase at once)...
    assert!(opt_lin.borrow_ratio > 1.0);
    // ...and OPT lifts the chained protocol massively — without lending
    // the long chain-held prepared locks are pure blocking.
    let lin = Simulation::run(&cfg, ProtocolSpec::LINEAR_2PC, 6).unwrap();
    let gain_linear = opt_lin.throughput / lin.throughput;
    assert!(
        gain_linear > 1.4,
        "OPT should lift linear 2PC substantially under contention, got {gain_linear:.3}x"
    );
}

#[test]
fn linear_rejects_incompatible_features() {
    let mut cfg = conflict_free();
    cfg.read_only_optimization = true;
    assert!(Simulation::run(&cfg, ProtocolSpec::LINEAR_2PC, 7).is_err());

    let mut cfg = conflict_free();
    cfg.failures = Some(distcommit::db::config::FailureConfig::master_crashes(0.01));
    assert!(Simulation::run(&cfg, ProtocolSpec::LINEAR_2PC, 7).is_err());
}

#[test]
fn linear_is_deterministic() {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.mpl = 4;
    cfg.cohort_abort_prob = 0.05;
    cfg.run.warmup_transactions = 100;
    cfg.run.measured_transactions = 600;
    let a = run(&cfg, ProtocolSpec::OPT_LINEAR_2PC, 8);
    let b = run(&cfg, ProtocolSpec::OPT_LINEAR_2PC, 8);
    assert_eq!(a.events, b.events);
    assert!((a.throughput - b.throughput).abs() < 1e-12);
}
