//! Failure analysis: what the paper's §2.4 blocking argument costs in
//! practice. The paper's experiments are failure-free and find 3PC
//! ~20% behind 2PC; this example injects master crashes at the
//! decision point and finds where the ordering flips — the operational
//! question behind choosing OPT-3PC.
//!
//! ```sh
//! cargo run --release --example failure_analysis
//! ```

use distcommit::db::config::{FailureConfig, SystemConfig};
use distcommit::db::engine::Simulation;
use distcommit::proto::ProtocolSpec;

fn main() {
    let base = SystemConfig::paper_baseline()
        .with_mpl(4)
        .with_run_length(300, 3_000);

    println!("Master crashes at the decision point; detection 300 ms, recovery 5 s.");
    println!("Throughput (txn/s) at MPL 4:\n");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "crash prob", "2PC", "OPT", "3PC", "OPT-3PC"
    );

    let mut flip: Option<f64> = None;
    for &p in &[0.0, 0.001, 0.005, 0.01, 0.02, 0.05] {
        let cfg = if p > 0.0 {
            base.clone().with_failures(FailureConfig::master_crashes(p))
        } else {
            base.clone()
        };
        let t = |spec| {
            Simulation::run(&cfg, spec, 42)
                .expect("valid config")
                .throughput
        };
        let two_pc = t(ProtocolSpec::TWO_PC);
        let opt = t(ProtocolSpec::OPT_2PC);
        let three_pc = t(ProtocolSpec::THREE_PC);
        let opt_3pc = t(ProtocolSpec::OPT_3PC);
        println!(
            "{:>11.1}% {two_pc:>10.2} {opt:>10.2} {three_pc:>10.2} {opt_3pc:>10.2}",
            p * 100.0
        );
        if flip.is_none() && three_pc > two_pc {
            flip = Some(p);
        }
    }

    println!();
    match flip {
        Some(p) => println!(
            "the blocking/non-blocking ordering flips near a {:.1}% master-crash rate:\n\
             below it, 3PC's extra phase is wasted overhead; above it, every 2PC crash\n\
             strands ~12 update locks for the full 5 s recovery and blocking cascades.\n\
             OPT-3PC pairs the non-blocking guarantee with OPT's lending — the paper's\n\
             \"win-win\" recommendation, now with the failure axis made explicit.",
            p * 100.0
        ),
        None => println!("no flip in the swept range — failures too rare or recovery too fast."),
    }
}
