//! Quickstart: run the paper's baseline workload under 2PC and OPT and
//! compare them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::Simulation;
use distcommit::proto::ProtocolSpec;

fn main() {
    // The reconstructed Table 2 baseline: 8 sites, parallel
    // transactions over 3 sites, 6 pages per cohort, all updates.
    let cfg = SystemConfig::paper_baseline()
        .with_mpl(4) // the throughput knee in the paper's figures
        .with_run_length(500, 5_000);

    println!("Workload / system configuration (Table 2):\n{cfg}");

    println!("running 2PC, Presumed Abort, Presumed Commit, 3PC, OPT, OPT-3PC ...\n");
    let specs = [
        ProtocolSpec::CENT,
        ProtocolSpec::DPCC,
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_3PC,
    ];
    let mut reports = Vec::new();
    for spec in specs {
        let report = Simulation::run(&cfg, spec, 42).expect("valid baseline config");
        println!("{}", report.summary());
        reports.push((spec, report));
    }

    // The paper's headline observations, recomputed live:
    let get = |name: &str| {
        reports
            .iter()
            .find(|(s, _)| s.name() == name)
            .map(|(_, r)| r.throughput)
            .unwrap()
    };
    let cent = get("CENT");
    let dpcc = get("DPCC");
    let two_pc = get("2PC");
    let opt = get("OPT");

    println!();
    println!(
        "distribution cost   (CENT − DPCC): {:>6.2} txn/s — the price of distributed *data* processing",
        cent - dpcc
    );
    println!(
        "commit cost         (DPCC − 2PC) : {:>6.2} txn/s — the price of distributed *commit* processing",
        dpcc - two_pc
    );
    println!(
        "OPT's recovery      (OPT − 2PC)  : {:>6.2} txn/s — borrowing prepared data wins back {:.0}% of the commit cost",
        opt - two_pc,
        100.0 * (opt - two_pc) / (dpcc - two_pc).max(f64::EPSILON)
    );
}
