//! Trace explorer: watch one transaction move through a commit
//! protocol, step by step — every message, every forced log write,
//! every state change, with simulated timestamps.
//!
//! ```sh
//! cargo run --release --example trace_explorer            # 2PC
//! cargo run --release --example trace_explorer -- OPT-3PC
//! cargo run --release --example trace_explorer -- L2PC
//! ```

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::Simulation;
use distcommit::proto::ProtocolSpec;

fn main() {
    let spec: ProtocolSpec = std::env::args()
        .nth(1)
        .as_deref()
        .unwrap_or("2PC")
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });

    // A conflict-free single-transaction-per-site setup so the timeline
    // shows pure protocol behaviour.
    let cfg = SystemConfig::paper_baseline()
        .with_db_size(80_000)
        .with_mpl(1)
        .with_run_length(0, 30);

    println!("protocol: {spec}   (2 remote cohorts + 1 local, conflict-free)\n");
    let (report, trace) = Simulation::run_traced(&cfg, spec, 7, 1).expect("valid configuration");
    print!("{}", trace.render_txn(1));

    println!();
    println!(
        "per-commit accounting over {} committed txns: {:.2} exec + {:.2} commit messages, \
         {:.2} forced writes",
        report.committed,
        report.exec_messages_per_commit,
        report.commit_messages_per_commit,
        report.forced_writes_per_commit
    );
    let o = spec.committed_overheads(cfg.dist_degree);
    println!(
        "analytic model (Tables 3/4 formulas):              {} exec + {} commit messages, {} forced writes",
        o.exec_messages, o.commit_messages, o.forced_writes
    );

    // Under contention, the same protocol grows OPT shelf/lending
    // events — show a second transaction from a contended run.
    if spec.opt {
        let hot = SystemConfig::pure_data_contention()
            .with_mpl(6)
            .with_run_length(0, 300);
        let (_, tr) = Simulation::run_traced(&hot, spec, 11, 100_000).expect("valid config");
        if let Some(txn) = tr.txns().into_iter().find(|&t| {
            tr.of_txn(t)
                .iter()
                .any(|e| matches!(e, distcommit::db::engine::TraceEvent::Shelved { .. }))
        }) {
            println!("\n--- a borrowing transaction under contention (pure DC, MPL 6) ---\n");
            print!("{}", tr.render_txn(txn));
        }
    }
}
