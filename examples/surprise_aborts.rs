//! OPT robustness under "surprise aborts" (§5.7): how far can the
//! probability of commit-phase NO votes rise before optimistic
//! borrowing stops paying off?
//!
//! The paper's claim: OPT keeps its edge until roughly fifteen percent
//! of transactions abort in the commit phase — far above anything seen
//! in practice. This example sweeps the cohort NO-vote probability and
//! finds the crossover empirically.
//!
//! ```sh
//! cargo run --release --example surprise_aborts
//! ```

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::Simulation;
use distcommit::proto::ProtocolSpec;

fn main() {
    let base = SystemConfig::paper_baseline()
        .with_mpl(4)
        .with_run_length(300, 4_000);

    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "cohort p", "~txn aborts", "2PC", "PA", "OPT", "OPT-PA"
    );

    let mut crossover: Option<f64> = None;
    for &p in &[0.0, 0.01, 0.02, 0.05, 0.08, 0.10, 0.12] {
        let cfg = base.clone().with_cohort_abort_prob(p);
        let run = |spec| Simulation::run(&cfg, spec, 42).expect("valid config");
        let two_pc = run(ProtocolSpec::TWO_PC);
        let pa = run(ProtocolSpec::PA);
        let opt = run(ProtocolSpec::OPT_2PC);
        let opt_pa = run(ProtocolSpec::OPT_PA);
        // At DistDegree 3 a transaction aborts unless all three cohorts
        // vote YES: P(abort) = 1 - (1-p)^3.
        let txn_abort = 1.0 - (1.0 - p).powi(3);
        println!(
            "{:>10.2} {:>11.1}% {:>10.2} {:>10.2} {:>10.2} {:>12.2}",
            p,
            txn_abort * 100.0,
            two_pc.throughput,
            pa.throughput,
            opt.throughput,
            opt_pa.throughput,
        );
        if crossover.is_none() && opt.throughput < two_pc.throughput * 0.97 {
            crossover = Some(txn_abort);
        }
    }

    println!();
    match crossover {
        Some(t) => println!(
            "OPT falls >3% behind 2PC once ~{:.0}% of transactions abort in the commit phase;\n\
             the paper's robustness bound is ~15%, and real systems sit far below either figure.",
            t * 100.0
        ),
        None => println!("OPT never fell behind 2PC in the swept range."),
    }
}
