//! The whole reproduction in one command: runs a compact version of
//! every experiment in the paper's evaluation section and prints a
//! pass/fail report against the paper's qualitative claims.
//!
//! ```sh
//! cargo run --release --example paper_report
//! ```
//!
//! (The bench harness regenerates the full tables and figures; this
//! example is the five-minute "does the reproduction hold?" check.)

use distcommit::db::experiments::{fig1, fig2, fig4, fig5, Scale};

struct Claim {
    text: &'static str,
    holds: bool,
    evidence: String,
}

fn main() {
    // MPL 4 *and* 5 matter: the classical protocols peak at 4, OPT at 5
    // (the paper's own observation in §5.3).
    let scale = Scale {
        warmup: 200,
        measured: 2_500,
        mpls: vec![1, 2, 4, 5, 6, 8, 10],
        seed: 42,
        replications: 1,
        jobs: None,
    };
    println!("running compact versions of Experiments 1, 2, 5 and 6 ...\n");

    let e1 = fig1(&scale).expect("valid config");
    let e2 = fig2(&scale).expect("valid config");
    let (e4_rc, e4_dc) = fig4(&scale).expect("valid config");
    let (e5_rc, _) = fig5(&scale).expect("valid config");

    let peak = |e: &distcommit::db::experiments::Experiment, label: &str| {
        e.series(label)
            .map(|s| s.peak_throughput())
            .unwrap_or(f64::NAN)
    };

    let mut claims = Vec::new();

    // §5.2: commit processing costs more than data distribution.
    let (cent, dpcc, two_pc) = (peak(&e1, "CENT"), peak(&e1, "DPCC"), peak(&e1, "2PC"));
    claims.push(Claim {
        text: "Expt 1: distributed commit costs more than distributed data (DPCC−2PC > CENT−DPCC)",
        holds: (dpcc - two_pc) > (cent - dpcc),
        evidence: format!("CENT {cent:.1}, DPCC {dpcc:.1}, 2PC {two_pc:.1} txn/s at peak"),
    });

    // §5.2: 3PC trails 2PC; OPT leads the classical protocols.
    let (three_pc, opt) = (peak(&e1, "3PC"), peak(&e1, "OPT"));
    claims.push(Claim {
        text: "Expt 1: OPT > 2PC > 3PC at peak",
        holds: opt > two_pc && two_pc > three_pc,
        evidence: format!("OPT {opt:.1}, 2PC {two_pc:.1}, 3PC {three_pc:.1}"),
    });

    // §5.3: the gaps widen under pure DC and OPT approaches DPCC.
    let (dpcc2, two2, opt2) = (peak(&e2, "DPCC"), peak(&e2, "2PC"), peak(&e2, "OPT"));
    claims.push(Claim {
        text: "Expt 2 (pure DC): OPT recovers most of the DPCC−2PC gap",
        holds: (opt2 - two2) > 0.5 * (dpcc2 - two2),
        evidence: format!("DPCC {dpcc2:.1}, OPT {opt2:.1}, 2PC {two2:.1}"),
    });

    // §5.6: the win-win — OPT-3PC ≥ 2PC under DC.
    let (wb_2pc, wb_opt3) = (peak(&e4_dc, "2PC"), peak(&e4_dc, "OPT-3PC"));
    claims.push(Claim {
        text: "Expt 5 (pure DC): non-blocking OPT-3PC beats blocking 2PC at peak",
        holds: wb_opt3 > wb_2pc,
        evidence: format!("OPT-3PC {wb_opt3:.1} vs 2PC {wb_2pc:.1}"),
    });
    let (rc_3pc, rc_opt3) = (peak(&e4_rc, "3PC"), peak(&e4_rc, "OPT-3PC"));
    claims.push(Claim {
        text: "Expt 5 (RC+DC): OPT lifts 3PC toward the blocking protocols",
        holds: rc_opt3 > rc_3pc * 1.08,
        evidence: format!("OPT-3PC {rc_opt3:.1} vs 3PC {rc_3pc:.1}"),
    });

    // §5.7: OPT robust through ~15% aborts, behind at ~27%.
    let (t15, o15) = (peak(&e5_rc, "2PC abort=15%"), peak(&e5_rc, "OPT abort=15%"));
    let (t27, o27) = (peak(&e5_rc, "2PC abort=27%"), peak(&e5_rc, "OPT abort=27%"));
    claims.push(Claim {
        text: "Expt 6: OPT within ~10% of 2PC at the 15% abort level",
        holds: o15 > t15 * 0.9,
        evidence: format!("OPT {o15:.1} vs 2PC {t15:.1}"),
    });
    claims.push(Claim {
        text: "Expt 6: OPT behind 2PC at the 27% abort level",
        holds: o27 < t27,
        evidence: format!("OPT {o27:.1} vs 2PC {t27:.1}"),
    });

    let mut ok = 0;
    for c in &claims {
        println!("[{}] {}", if c.holds { "PASS" } else { "FAIL" }, c.text);
        println!("        {}", c.evidence);
        if c.holds {
            ok += 1;
        }
    }
    println!(
        "\n{ok}/{} of the paper's headline claims hold at this scale.",
        claims.len()
    );
    println!("(full-length runs: DISTCOMMIT_FULL=1 cargo bench; details in EXPERIMENTS.md)");
    if ok < claims.len() {
        std::process::exit(1);
    }
}
