//! Protocol face-off: sweep the multiprogramming level for every
//! protocol the paper evaluates and print throughput, block-ratio and
//! borrow-ratio tables — a miniature of Figures 1a–1c.
//!
//! ```sh
//! cargo run --release --example protocol_faceoff            # RC+DC
//! cargo run --release --example protocol_faceoff -- dc      # pure data contention
//! ```

use distcommit::db::experiments::{fig1, fig2, Scale};
use distcommit::db::output::{render_peaks, render_table, Metric};

fn main() {
    let pure_dc = std::env::args().nth(1).as_deref() == Some("dc");
    let scale = Scale {
        warmup: 200,
        measured: 2_000,
        mpls: vec![1, 2, 4, 6, 8, 10],
        seed: 42,
        replications: 1,
        jobs: None,
    };

    let exp = if pure_dc {
        fig2(&scale).expect("valid config")
    } else {
        fig1(&scale).expect("valid config")
    };

    print!("{}", render_table(&exp, Metric::Throughput));
    println!();
    print!("{}", render_table(&exp, Metric::BlockRatio));
    println!();
    print!("{}", render_table(&exp, Metric::BorrowRatio));
    println!();
    print!("{}", render_peaks(&exp));

    println!();
    println!("Reading the tables against the paper's §5.2/§5.3 claims:");
    println!(" * every protocol's throughput rises to a knee (MPL ≈ 4-5), then thrashes;");
    println!(" * CENT ≈ DPCC ≫ 2PC: distributed commit costs more than distributed data;");
    println!(" * 3PC trails 2PC (extra phase, extra forced writes);");
    println!(" * OPT tracks 2PC at low MPL and approaches DPCC once borrowing kicks in;");
    println!(" * OPT's block ratio sits below every classical protocol's.");
}
