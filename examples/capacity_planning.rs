//! Capacity planning with the simulator: a scenario the paper's
//! introduction motivates — you run a distributed OLTP system on
//! 2PC-class commit processing and want to know (a) the admission
//! level (MPL) that maximizes throughput, and (b) what switching the
//! commit protocol would buy on *your* hardware, before touching
//! production.
//!
//! The example models a mid-size installation (faster network and an
//! extra disk per site than the paper's 1997 baseline), finds each
//! protocol's peak operating point, and prints a migration summary —
//! including the paper's "win-win" check: does OPT-3PC beat your
//! current blocking protocol while adding non-blocking recovery?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use distcommit::db::config::SystemConfig;
use distcommit::db::engine::Simulation;
use distcommit::db::metrics::SimReport;
use distcommit::proto::ProtocolSpec;
use simkernel::SimDuration;

/// Sweep MPL for one protocol and return the best operating point.
fn find_peak(cfg: &SystemConfig, spec: ProtocolSpec) -> (u32, SimReport) {
    let mut best: Option<(u32, SimReport)> = None;
    for mpl in [1u32, 2, 3, 4, 5, 6, 8, 10, 12] {
        let cfg = cfg.clone().with_mpl(mpl);
        let report = Simulation::run(&cfg, spec, 7).expect("valid config");
        let better = best
            .as_ref()
            .is_none_or(|(_, b)| report.throughput > b.throughput);
        if better {
            best = Some((mpl, report));
        }
    }
    best.expect("at least one MPL swept")
}

fn main() {
    // "Our" installation: the paper's topology with year-2000 hardware —
    // 1 ms message path and three data disks per site.
    let cfg = SystemConfig::paper_baseline()
        .fast_network()
        .with_data_disks(3)
        .with_run_length(300, 3_000);

    println!("Installation under study:\n{cfg}");

    let current = ProtocolSpec::TWO_PC;
    let candidates = [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_3PC,
    ];

    println!(
        "{:<10} {:>5} {:>12} {:>12} {:>10} {:>14}",
        "protocol", "MPL*", "peak txn/s", "resp @peak", "blocking?", "vs current"
    );
    let mut results = Vec::new();
    for spec in candidates {
        let (mpl, report) = find_peak(&cfg, spec);
        results.push((spec, mpl, report));
    }
    let baseline = results
        .iter()
        .find(|(s, _, _)| *s == current)
        .map(|(_, _, r)| r.throughput)
        .expect("current protocol swept");
    for (spec, mpl, report) in &results {
        println!(
            "{:<10} {:>5} {:>12.2} {:>11.3}s {:>10} {:>+13.1}%",
            spec.name(),
            mpl,
            report.throughput,
            report.mean_response_s,
            if spec.is_non_blocking() { "no" } else { "yes" },
            100.0 * (report.throughput - baseline) / baseline,
        );
    }

    // The §5.6 "win-win" check: a non-blocking protocol that still beats
    // the blocking incumbent.
    let opt3 = results
        .iter()
        .find(|(s, _, _)| *s == ProtocolSpec::OPT_3PC)
        .unwrap();
    println!();
    if opt3.2.throughput > baseline {
        println!(
            "win-win: OPT-3PC is non-blocking AND {:.1}% faster than 2PC at its peak —\n\
             the migration the paper recommends for high-contention systems.",
            100.0 * (opt3.2.throughput - baseline) / baseline
        );
    } else {
        println!(
            "on this hardware OPT-3PC gives up {:.1}% peak throughput as the price of \
             non-blocking recovery.",
            100.0 * (baseline - opt3.2.throughput) / baseline
        );
    }

    // Sensitivity: what if the network were the paper's slow 5 ms path?
    let mut slow = cfg.clone();
    slow.msg_cpu = SimDuration::from_millis(5);
    let (_, slow_2pc) = find_peak(&slow, ProtocolSpec::TWO_PC);
    let (_, slow_opt) = find_peak(&slow, ProtocolSpec::OPT_2PC);
    println!(
        "\nsensitivity: with a 5 ms message path, 2PC peaks at {:.2} txn/s and OPT at {:.2} \
         ({:+.1}%) — OPT's advantage persists on fast networks because it attacks data\n\
         contention, not message cost (§5.4).",
        slow_2pc.throughput,
        slow_opt.throughput,
        100.0 * (slow_opt.throughput - slow_2pc.throughput) / slow_2pc.throughput
    );
}
